// Package multistore wires the substrates into the complete system of the
// paper — catalog, HV and DW stores, transfer layer, multistore query
// optimizer, history window, and MISO tuner — and implements the execution
// layer that runs multistore plans (executing HV parts, migrating working
// sets into DW temp space, resuming in DW) plus every system variant the
// evaluation compares: HV-ONLY, DW-ONLY, MS-BASIC, HV-OP, MS-MISO, MS-OFF,
// MS-LRU, and MS-ORA. All times are simulated seconds accumulated into the
// TTI breakdown.
package multistore

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"miso/internal/core"
	"miso/internal/data"
	"miso/internal/durability"
	"miso/internal/dw"
	"miso/internal/exec"
	"miso/internal/faults"
	"miso/internal/govern"
	"miso/internal/history"
	"miso/internal/hv"
	"miso/internal/logical"
	"miso/internal/mqo"
	"miso/internal/optimizer"
	"miso/internal/stats"
	"miso/internal/storage"
	"miso/internal/transfer"
)

// Variant selects the system behavior under evaluation.
type Variant string

// The system variants of Section 5.
const (
	VariantHVOnly  Variant = "HV-ONLY"
	VariantDWOnly  Variant = "DW-ONLY"
	VariantMSBasic Variant = "MS-BASIC"
	VariantHVOp    Variant = "HV-OP"
	VariantMSMiso  Variant = "MS-MISO"
	VariantMSOff   Variant = "MS-OFF"
	VariantMSLru   Variant = "MS-LRU"
	VariantMSOra   Variant = "MS-ORA"
)

// Config assembles the full system configuration.
type Config struct {
	Variant  Variant
	HV       hv.Config
	DW       dw.Config
	Transfer transfer.Config
	Tuner    core.Config

	// ReorgEvery triggers a reorganization phase every n queries
	// (MS-MISO / MS-ORA). The paper reorganizes every 1/10 of the
	// workload, i.e. every 3 queries for the 32-query workload. Zero
	// disables query-based reorganization; the paper also allows time-
	// or activity-based invocation, which callers implement by invoking
	// Reorganize directly (e.g. when the system is idle).
	ReorgEvery int
	// HistoryLen and EpochLen configure the tuning window (6 and 3 in
	// the paper); Decay weights older epochs down.
	HistoryLen int
	EpochLen   int
	Decay      float64

	// Faults is the fault-injection profile (all-zero disables injection,
	// making the failure plane strictly additive: timings are then
	// byte-identical to a system with no fault plane at all).
	Faults faults.Profile
	// FaultSeed seeds the deterministic injector; a fixed (profile, seed)
	// pair reproduces the exact same failure sequence.
	FaultSeed int64
	// Retry is the recovery policy for injected failures; the zero value
	// means faults.DefaultRetry.
	Retry faults.RetryPolicy
	// RetryBudget caps the total retries one query may pay across every
	// recovery path it touches (HV stage retries, transfer resume/reload
	// attempts, DW query replays); each reorganization or ETL phase gets
	// its own budget of the same size. When the budget runs dry the
	// operation stops retrying with an error wrapping faults.ErrExhausted
	// and degrades through the usual fallback paths, so a fault storm
	// costs a query at most RetryBudget extra attempts instead of a full
	// per-phase allowance at every phase. Zero disables the budget: retry
	// behavior is then byte-identical to a system without one.
	RetryBudget int
	// Hedge enables hedged DW execution: once the DW part of a split plan
	// has been running longer than an adaptive threshold (tracked from a
	// sliding window of observed DW wall durations), the equivalent
	// HV-only fallback plan starts computing concurrently. If the DW side
	// completes, the shadow is cooperatively canceled; if the DW side's
	// injected failures exhaust their retries, the already-computed shadow
	// is committed in place of the serial fallback re-execution. All
	// simulated accounting is deferred to the commit point, so results and
	// StateDigest are byte-identical with hedging on or off — only
	// wall-clock latency and the hedge counters differ.
	Hedge HedgeConfig

	// CheckpointEvery enables the durability plane: every catalog/design
	// mutation is journaled to a write-ahead log and a full-state
	// checkpoint is taken every n completed operations (queries, updates,
	// explicit Reorganize calls). Zero disables durability entirely —
	// journaling charges no simulated time either way, so enabling it
	// never changes the TTI breakdown of a fault-free run.
	CheckpointEvery int

	// ExecWorkers selects both stores' execution engine (exec.Env.Workers
	// semantics): 0 runs the morsel engine with GOMAXPROCS workers (the
	// default), n > 0 bounds the pool, and exec.SerialWorkers selects the
	// legacy serial engine. Results — tables, digests, TTI — are
	// byte-identical at every setting; only real wall-clock changes. A
	// nonzero value overrides HV.ExecWorkers and DW.ExecWorkers.
	ExecWorkers int

	// MemLimitBytes caps the execution memory of a single query: extract
	// buffers, hash partitions, sort keys, and materialized intermediates
	// are charged against a per-query ledger, and a query that exceeds the
	// limit aborts with an error wrapping govern.ErrMemLimit (its accrued
	// work charged to Recovery). Zero disables the per-query limit.
	MemLimitBytes int64
	// MemPoolBytes caps the combined charged execution memory of every
	// query the system runs (the server-wide reservation pool). Zero
	// disables the pool. With both fields zero no ledger is attached and
	// execution is byte-identical to a system with no memory governance.
	MemPoolBytes int64

	// Reuse enables the cross-query reuse plane: single-flight
	// piggybacking of identical concurrent queries and the content-hashed
	// semantic result/subresult cache (see ReuseConfig). Disabled runs
	// take the exact pre-reuse code path: results and StateDigest are
	// byte-identical to a system without the plane.
	Reuse ReuseConfig
}

// DefaultConfig returns the paper's setup for the given variant; view
// storage and transfer budgets must still be set (see SetBudgets).
func DefaultConfig(v Variant) Config {
	return Config{
		Variant:    v,
		HV:         hv.DefaultConfig(),
		DW:         dw.DefaultConfig(),
		Transfer:   transfer.DefaultConfig(),
		Tuner:      core.DefaultConfig(),
		ReorgEvery: 3,
		HistoryLen: 6,
		EpochLen:   3,
		Decay:      0.5,
	}
}

// SetBudgets sets the view storage budgets as multiples of each store's
// base-data size — HV's base is the full logs, DW's is the relevant
// portion, 1/10th of the logs as in the paper — and the transfer budget in
// bytes.
func (c *Config) SetBudgets(cat *storage.Catalog, multiple float64, transferBytes int64) {
	base := cat.TotalLogicalBytes()
	c.Tuner.Bh = int64(multiple * float64(base))
	c.Tuner.Bd = int64(multiple * float64(base) / 10)
	c.Tuner.Bt = transferBytes
}

// Metrics is the TTI breakdown: the cumulative simulated time of each
// component as defined in Section 5.1.
type Metrics struct {
	HVExe    float64
	DWExe    float64
	Transfer float64
	Tune     float64
	ETL      float64
	// Recovery is the time lost to injected failures and spent surviving
	// them: partial re-executions, backoff waits, rolled-back loads and
	// moves, and full-HV fallback runs. Zero when injection is disabled.
	Recovery float64
	Queries  int
	Reorgs   int
	// Fallbacks counts queries that completed in HV after their
	// multistore plan failed mid-flight.
	Fallbacks int
	// Retries counts injected failures survived anywhere in the system.
	Retries int
	// Canceled counts queries abandoned mid-plan by a deadline or
	// cancellation; their partial work is charged to Recovery and they do
	// not count toward Queries.
	Canceled int
	// MemAborted counts queries aborted for exceeding their memory budget
	// (per-query limit or server-wide pool); like canceled queries, their
	// partial work is charged to Recovery.
	MemAborted int
	// PanicsContained counts queries that failed because a worker panic was
	// caught and converted to a typed error instead of crashing the
	// process; their partial work is charged to Recovery.
	PanicsContained int
	// Degraded counts queries forced onto the HV-only path by the serving
	// layer (DW circuit breaker open). They complete and count toward
	// Queries; their time is charged to HVExe like any HV execution.
	Degraded int
	// Quarantined counts views removed from the design instead of being
	// served: corrupt content (checksum mismatch) or a stale base-log
	// generation. Quarantine work is charged to Recovery.
	Quarantined int
	// Hedges counts DW executions that armed an HV shadow (the hedge
	// timer was set; whether the shadow's goroutine actually ran before
	// the DW side finished is a scheduling race). The two counters below
	// depend on wall-clock timing, so all three are deliberately excluded
	// from StateDigest: hedged and unhedged runs stay digest-identical.
	Hedges int
	// HedgeWins counts hedged queries whose DW side exhausted its retries
	// and were answered by committing the shadow's pre-computed fallback
	// instead of re-executing it serially.
	HedgeWins int
	// HedgesCanceled counts shadows whose compute started but was
	// cooperatively canceled — the DW side completed first, or the shadow
	// itself failed.
	HedgesCanceled int
	// AuditViolations counts integrity violations detected by the online
	// audit plane (AuditViews/AuditInvariants): checksum mismatches, stale
	// generations, disjointness or budget breaks, WAL inconsistencies.
	// AuditRepaired counts violations self-healed online (views recomputed
	// through the HV fallback path, budgets evicted back under limit,
	// durable payloads re-journaled); AuditUnrepaired counts violations
	// that could only be quarantined or reported. Like the hedge counters,
	// all three are excluded from StateDigest: the scrubber runs on a
	// wall-clock schedule, and an audit-disabled run must stay
	// byte-identical to a system with no audit plane at all.
	AuditViolations int
	AuditRepaired   int
	AuditUnrepaired int
	// The reuse-plane counters below depend on concurrent arrival timing
	// (who rendezvouses with whom) and cache residency, so — like the
	// hedge and audit counters — all four are excluded from StateDigest:
	// a reuse-disabled run stays byte-identical to a system with no reuse
	// plane at all. CacheHits counts queries answered from the semantic
	// cache; CacheMisses counts fingerprintable queries that executed
	// cold (including cut-level subresult probes); Piggybacked counts
	// queries that shared a concurrent leader's in-flight execution;
	// SubplanHits counts HV cuts answered from cached subresults.
	CacheHits   int
	CacheMisses int
	Piggybacked int
	SubplanHits int
}

// TTI returns the total time-to-insight.
func (m Metrics) TTI() float64 {
	return m.HVExe + m.DWExe + m.Transfer + m.Tune + m.ETL + m.Recovery
}

// QueryReport records one query's execution.
type QueryReport struct {
	Seq int
	SQL string

	HVSeconds       float64
	TransferSeconds float64
	DWSeconds       float64
	TransferBytes   int64
	// RecoverySeconds is the time this query lost to injected failures
	// (partial re-executions, backoffs, aborted transfers, and — after a
	// mid-flight failure — the full-HV fallback run).
	RecoverySeconds float64
	// Retries counts injected failures this query survived.
	Retries int
	// FellBackToHV marks a query whose multistore plan failed mid-flight
	// (transfer aborted or DW side gave out) and that completed by
	// re-running entirely in HV.
	FellBackToHV bool
	// FallbackCause is the error that forced the HV fallback; it wraps
	// faults.ErrExhausted. Nil when FellBackToHV is false. The serving
	// layer's DW circuit breaker keys off this field.
	FallbackCause error
	// Degraded marks a query routed onto the forced HV-only path by the
	// serving layer while the DW circuit breaker was open (RunDegraded).
	Degraded bool
	// HedgeWon marks a fallback served from the hedge shadow's
	// pre-computed execution. Wall-clock observability only: the field is
	// excluded from StateDigest and the durability journal, since whether
	// the hedge timer beat the DW verdict depends on real time.
	HedgeWon bool
	// CacheHit marks a query answered from the semantic result cache;
	// Piggybacked marks one that shared a concurrent identical query's
	// in-flight execution; SubplanHits counts HV cuts answered from
	// cached subresults. All three are reuse-plane observability and, like
	// HedgeWon, excluded from StateDigest and the durability journal.
	CacheHit    bool
	Piggybacked bool
	SubplanHits int

	// HVOps / DWOps count plan operators executed in each store.
	HVOps, DWOps int
	// HVOnly marks full-HV execution; BypassedHV marks full-DW execution
	// (every cut answered from DW-resident views).
	HVOnly     bool
	BypassedHV bool
	// UsedViews are the names of materialized views read.
	UsedViews []string
	// NewViews counts opportunistic views created.
	NewViews int
	// ResultRows is the query result cardinality.
	ResultRows int
	// Result is the actual result table (kept for verification and for
	// callers that want the data; result sets are small).
	Result *storage.Table
}

// Total returns the query's execution time (excluding tuning/ETL, which are
// system-level), including any recovery time it paid.
func (r *QueryReport) Total() float64 {
	return r.HVSeconds + r.TransferSeconds + r.DWSeconds + r.RecoverySeconds
}

// System is one running multistore instance. Methods that mutate state
// (Run, Reorganize, AppendToLog, RefreshLog, ProvideFutureWorkload) are
// serialized by an internal mutex, so a System is safe to share across
// goroutines; queries still execute one at a time, as in the paper's
// single-stream evaluation.
type System struct {
	mu      sync.Mutex
	cfg     Config
	cat     *storage.Catalog
	builder *logical.Builder
	est     *stats.Estimator
	hv      *hv.Store
	dw      *dw.Store
	opt     *optimizer.Optimizer
	window  *history.Window
	inj     *faults.Injector
	execInj *faults.Injector
	memPool *govern.Pool
	retry   faults.RetryPolicy
	// qbud is the current query's retry budget (nil when RetryBudget is 0
	// or between queries); queries are serialized under mu, so a single
	// field is always the running query's.
	qbud  *faults.Budget
	hedge *hedgeTracker

	future  []history.Entry
	seq     int
	metrics Metrics
	reports []*QueryReport

	etlDone  bool
	offTuned bool
	// offTargetHV / offTargetDW are MS-OFF's fixed design (view names).
	offTargetHV map[string]bool
	offTargetDW map[string]bool

	reorgLog []ReorgRecord

	// dur is the durability manager (nil when CheckpointEvery is 0);
	// jbase is the design as of the last journaled operation boundary,
	// diffed at each boundary to emit view admit/evict records.
	dur   *durability.Manager
	jbase map[string]byte

	// tomb holds quarantine tombstones: names the audit plane removed from
	// the design without repairing. The capture veto and MS-LRU passive
	// retention refuse a tombstoned name, so an evicted-then-quarantined
	// view cannot resurrect through opportunistic capture; the set is
	// cleared when a repair reinstates the name and wholesale at reorg
	// commit, when the tuner rebuilds the design from the surviving views.
	// Nil until the first audit quarantine, so audit-disabled runs never
	// allocate it.
	tomb map[string]bool
	// rotLog names the views corrupted by SiteViewRot, in injection order.
	rotLog []string

	// reuse is the cross-query reuse plane (nil when Config.Reuse is
	// disabled — every reuse touchpoint is then a single nil check).
	reuse *reusePlane
}

// ReorgRecord summarizes one reorganization phase.
type ReorgRecord struct {
	// BeforeSeq is the sequence number of the query the reorganization
	// preceded.
	BeforeSeq int
	MovedToDW int
	MovedToHV int
	Dropped   int
	// Bytes is the total view bytes transferred (consumed from Bt).
	Bytes int64
	// Seconds is the movement time charged to TUNE.
	Seconds float64
	// FailedMoves counts moves that aborted or failed to commit and were
	// rolled back atomically: the view stayed in its source store and the
	// budget below was refunded.
	FailedMoves int
	// RefundedBytes is the Bt consumption returned by rolled-back moves.
	RefundedBytes int64
	// RecoverySeconds is the time this phase lost to injected failures
	// (retries, backoffs, and wasted work of rolled-back moves), charged
	// to the RECOVERY component rather than TUNE.
	RecoverySeconds float64
}

// New creates a system over the catalog.
func New(cfg Config, cat *storage.Catalog) *System {
	// Movement netting: derive per-byte move times from the transfer
	// pipeline so the tuner only places views whose benefit exceeds the
	// cost of moving them.
	// The 3x factor adds hysteresis: predicted benefits come from the
	// recent window, which overstates recurrence for ad-hoc queries, so a
	// move must clearly pay for itself before the tuner performs it.
	if cfg.Tuner.MovePenaltyPerByteDW == 0 {
		cfg.Tuner.MovePenaltyPerByteDW = 3 * transfer.Cost(cfg.Transfer, 1<<30).Total() / float64(1<<30)
	}
	if cfg.Tuner.MovePenaltyPerByteHV == 0 {
		cfg.Tuner.MovePenaltyPerByteHV = 3 * transfer.CostToHV(cfg.Transfer, 1<<30).Total() / float64(1<<30)
	}
	if cfg.ExecWorkers != 0 {
		cfg.HV.ExecWorkers = cfg.ExecWorkers
		cfg.DW.ExecWorkers = cfg.ExecWorkers
	}
	est := stats.NewEstimator(cat)
	h := hv.NewStore(cfg.HV, cat, est)
	d := dw.NewStore(cfg.DW, est)
	opt := optimizer.New(h, d, est, cfg.Transfer)
	if cfg.Variant == VariantHVOnly || cfg.Variant == VariantHVOp {
		opt.DisableSplits = true
	}
	if cfg.Hedge.Enabled {
		cfg.Hedge = cfg.Hedge.withDefaults()
	}
	retry := cfg.Retry.OrDefault()
	inj := faults.NewInjector(cfg.Faults, cfg.FaultSeed) // nil for an all-zero profile
	h.SetFaults(inj, retry)
	// The exec-plane sites get their own injector: morsel workers draw from
	// it concurrently, which must never perturb the main injector's
	// globally-ordered deterministic draw sequence.
	execInj := faults.NewInjector(cfg.Faults.ExecOnly(), cfg.FaultSeed+1)
	h.SetExecFaults(execInj)
	d.SetExecFaults(execInj)
	s := &System{
		cfg:     cfg,
		cat:     cat,
		builder: logical.NewBuilder(cat),
		est:     est,
		hv:      h,
		dw:      d,
		opt:     opt,
		window:  history.NewWindow(cfg.HistoryLen, cfg.EpochLen, cfg.Decay),
		inj:     inj,
		execInj: execInj,
		memPool: govern.NewPool(cfg.MemPoolBytes), // nil when unlimited
		retry:   retry,
		hedge:   newHedgeTracker(cfg.Hedge),
	}
	// Vh ∩ Vd = ∅: an HV fallback recomputing the definition of a view the
	// tuner moved to DW must not re-capture it on the HV side. A
	// quarantine-tombstoned name is vetoed for the same reason: capture
	// would resurrect a view the audit plane just removed. Commit runs on
	// the serialized query flow under s.mu, so reading s.tomb is safe.
	h.SetCaptureVeto(func(name string) bool {
		return d.Views.Has(name) || s.tombstoned(name)
	})
	if cfg.Reuse.Enabled {
		s.reuse = newReusePlane(cfg.Reuse, s)
		// Costing sees the cache: a cut whose subresult is resident costs
		// no HV time, steering plan choice toward reuse. The probe reads
		// only mutex-guarded reuse state, keeping EnumeratePlans safe for
		// the tuner's concurrent what-if workers; the cache is cleared at
		// reorg start, so tuning itself probes an empty cache and stays
		// deterministic.
		opt.ReuseProbe = func(n *logical.Node) bool {
			fp, ok := s.cutFingerprint(n)
			return ok && s.reuse.cache.Contains(fp)
		}
	}
	if cfg.CheckpointEvery > 0 {
		s.dur = durability.NewManager(cfg.CheckpointEvery, durability.NewWAL(inj))
		// Boot checkpoint: recovery always has a base state to replay over.
		s.dur.Checkpoint(0, s.snapshotLocked())
		s.jbase = s.designMap()
	}
	return s
}

// NewDefault builds a system with the default paper-scale dataset.
func NewDefault(cfg Config) (*System, error) {
	cat, err := data.Generate(data.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return New(cfg, cat), nil
}

// Catalog returns the system's catalog.
func (s *System) Catalog() *storage.Catalog { return s.cat }

// Estimator exposes the shared statistics estimator.
func (s *System) Estimator() *stats.Estimator { return s.est }

// HV returns the big data store.
func (s *System) HV() *hv.Store { return s.hv }

// DW returns the warehouse store.
func (s *System) DW() *dw.Store { return s.dw }

// SetExecStats attaches a per-operator execution timing collector to both
// stores (nil detaches). The collector is safe for concurrent use, so one
// can span a whole serving session.
func (s *System) SetExecStats(st *exec.Stats) {
	s.hv.SetExecStats(st)
	s.dw.SetExecStats(st)
}

// Optimizer returns the multistore query optimizer.
func (s *System) Optimizer() *optimizer.Optimizer { return s.opt }

// Metrics returns a snapshot of the accumulated TTI breakdown. It is safe
// to call while queries run; the snapshot is a consistent point-in-time
// copy.
func (s *System) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.metrics
}

// FaultInjector returns the system's fault injector (nil when injection
// is disabled); useful for inspecting injected-failure counts.
func (s *System) FaultInjector() *faults.Injector { return s.inj }

// ExecFaultInjector returns the separate injector arming the exec engine's
// fault sites (nil when no exec-plane rates are configured).
func (s *System) ExecFaultInjector() *faults.Injector { return s.execInj }

// MemPool returns the server-wide execution-memory pool (nil when
// MemPoolBytes is 0).
func (s *System) MemPool() *govern.Pool { return s.memPool }

// Reports returns deep copies of the per-query execution reports in
// submission order: callers can neither observe nor cause races on
// internal mutation. Result tables are shared — they are write-once and
// never mutated after execution.
func (s *System) Reports() []*QueryReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*QueryReport, len(s.reports))
	for i, r := range s.reports {
		cp := *r
		cp.UsedViews = append([]string(nil), r.UsedViews...)
		out[i] = &cp
	}
	return out
}

// ReorgLog returns a snapshot of the per-reorganization records.
func (s *System) ReorgLog() []ReorgRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]ReorgRecord(nil), s.reorgLog...)
}

// Design returns the current placement of views.
func (s *System) Design() optimizer.Design {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.design()
}

// design is Design without the lock, for callers already holding s.mu.
func (s *System) design() optimizer.Design {
	return optimizer.Design{HV: s.hv.Views, DW: s.dw.Views}
}

// ProvideFutureWorkload registers the upcoming queries. DW-ONLY uses it to
// scope the ETL, MS-OFF to tune once up-front, and MS-ORA as its oracle
// window.
func (s *System) ProvideFutureWorkload(sqls []string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.future = s.future[:0]
	for i, sql := range sqls {
		plan, err := s.builder.BuildSQL(sql)
		if err != nil {
			return fmt.Errorf("multistore: future query %d: %w", i+1, err)
		}
		s.future = append(s.future, history.Entry{Seq: i, SQL: sql, Plan: plan})
	}
	return nil
}

// Explain plans (but does not run) a query against the current design and
// returns a human-readable description of the chosen multistore plan.
func (s *System) Explain(sql string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	plan, err := s.builder.BuildSQL(sql)
	if err != nil {
		return "", err
	}
	mp, err := s.opt.Choose(plan, optimizer.Design{HV: s.hv.Views, DW: s.dw.Views})
	if err != nil {
		return "", err
	}
	return mp.Explain(), nil
}

// Run submits one query to the system and returns its report.
func (s *System) Run(sql string) (*QueryReport, error) {
	return s.RunContext(context.Background(), sql)
}

// RunContext submits one query under a context. When ctx is canceled or
// its deadline fires, the query is abandoned at the next phase boundary
// (between HV stages, before a transfer, before the DW part) and, inside
// the morsel engine, at the next morsel claim or merge poll: the work it
// had already paid for is charged to the RECOVERY TTI component, Canceled
// is incremented, and the returned error wraps ctx.Err(). A query whose
// context is already done before any work starts returns an error without
// charging anything. The same abandonment path books queries that exceed
// their memory budget (error wraps govern.ErrMemLimit, counted in
// MemAborted) and queries felled by a contained worker panic (error wraps
// govern.ErrInternal, counted in PanicsContained). With a background
// context and no memory limits, RunContext is byte-identical to Run.
//
// With the reuse plane enabled (Config.Reuse), a query may instead be
// answered by piggybacking on a concurrent identical query's in-flight
// execution or from the semantic result cache; both paths book a
// zero-cost report whose result table is digest-verified against cold
// execution. A cache hit never triggers a reorganization — it touches
// neither store — so tuned variants reorganize on misses and via
// Reorganize.
func (s *System) RunContext(ctx context.Context, sql string) (*QueryReport, error) {
	if s.reuse != nil {
		return s.runShared(ctx, sql)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runLocked(ctx, sql)
}

// runLocked is the serialized query path (callers hold s.mu): the exact
// pre-reuse RunContext flow, with the semantic cache consulted after plan
// build and populated after successful execution when the plane is on.
func (s *System) runLocked(ctx context.Context, sql string) (*QueryReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("multistore: query not started: %w", err)
	}
	defer s.attachLedger()()
	defer s.attachBudget()()
	s.beginOp()
	s.quarantineStale()
	s.maybeRot()
	plan, err := s.builder.BuildSQL(sql)
	if err != nil {
		return nil, err
	}
	entry := history.Entry{Seq: s.seq, SQL: sql, Plan: plan}
	if failed, _ := s.inj.Check(faults.SiteCrashServe); failed {
		return nil, fmt.Errorf("multistore: query %d: %w", entry.Seq, faults.Crash(faults.SiteCrashServe))
	}

	var fp mqo.Fingerprint
	var fpOK bool
	if s.reuse != nil {
		if fp, fpOK = s.fingerprintLocked(plan); fpOK {
			if t, ok := s.reuse.cache.Get(fp); ok {
				s.metrics.CacheHits++
				return s.bookLocked(entry, &QueryReport{
					Seq: entry.Seq, SQL: sql,
					CacheHit:   true,
					ResultRows: t.NumRows(),
					Result:     t,
				})
			}
		}
		s.metrics.CacheMisses++
	}

	rep, err := s.runVariant(ctx, entry)
	if err != nil {
		return nil, err
	}
	if fpOK && rep.Result != nil {
		// Chain boundary: the finished query's materialized answer enters
		// the cache under the fingerprint computed before execution.
		s.reuse.cache.Put(fp, rep.Result)
	}
	return s.bookLocked(entry, rep)
}

// bookLocked commits a completed query into the window, sequence,
// metrics, report log, and durability journal. Callers hold s.mu.
func (s *System) bookLocked(entry history.Entry, rep *QueryReport) (*QueryReport, error) {
	s.window.Add(entry)
	s.seq++
	s.metrics.Queries++
	s.reports = append(s.reports, rep)
	if err := s.endOp(queryDoneRecord(rep)); err != nil {
		// The WAL append tore: the process is considered dead and the
		// query's completion never became durable.
		return nil, err
	}
	return rep, nil
}

// RunDegraded executes the query entirely in HV regardless of variant —
// the serving layer routes queries here while the DW circuit breaker is
// open. HV always holds the base logs, so any query can complete on this
// path. Opportunistic by-products are retained as usual (the store keeps
// warming while DW is out) and the execution time is charged to HVEXE:
// degraded service is productive work, not recovery. Reorganization is
// never triggered from this path — moving views into a store the breaker
// just declared unhealthy would be counterproductive.
func (s *System) RunDegraded(ctx context.Context, sql string) (*QueryReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("multistore: query not started: %w", err)
	}
	defer s.attachLedger()()
	defer s.attachBudget()()
	s.beginOp()
	s.quarantineStale()
	s.maybeRot()
	plan, err := s.builder.BuildSQL(sql)
	if err != nil {
		return nil, err
	}
	entry := history.Entry{Seq: s.seq, SQL: sql, Plan: plan}
	if failed, _ := s.inj.Check(faults.SiteCrashServe); failed {
		return nil, fmt.Errorf("multistore: query %d: %w", entry.Seq, faults.Crash(faults.SiteCrashServe))
	}
	rewritten := optimizer.RewriteWithViews(plan, s.hv.Views)
	res, err := s.hv.ExecuteContext(ctx, rewritten, entry.Seq)
	if err != nil {
		if isAbortErr(err) {
			return nil, s.abandon(err, &QueryReport{Seq: entry.Seq, SQL: sql}, entry.Seq)
		}
		return nil, fmt.Errorf("multistore: degraded query %d in HV: %w", entry.Seq, err)
	}
	rep := &QueryReport{
		Seq: entry.Seq, SQL: sql,
		HVSeconds:       res.Seconds,
		RecoverySeconds: res.RecoverySeconds,
		Retries:         res.Retries,
		HVOps:           countOps(rewritten),
		HVOnly:          true,
		Degraded:        true,
		UsedViews:       s.markUsedViews(rewritten, entry.Seq),
		NewViews:        len(res.NewViews),
		ResultRows:      res.Table.NumRows(),
		Result:          res.Table,
	}
	s.metrics.HVExe += res.Seconds
	s.addRecovery(res.RecoverySeconds, res.Retries)
	s.metrics.Degraded++
	return s.bookLocked(entry, rep)
}

// isCtxErr reports whether err stems from context cancellation or an
// expired deadline.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// isAbortErr reports whether err is a governed per-query abort — context
// cancellation/deadline, a memory-budget violation, or a contained worker
// panic — as opposed to a store or plan failure. Governed aborts are booked
// by abandon rather than wrapped as execution errors.
func isAbortErr(err error) bool {
	return isCtxErr(err) || errors.Is(err, govern.ErrMemLimit) || errors.Is(err, govern.ErrInternal)
}

// attachLedger creates the per-query memory ledger (nil when no limit and
// no pool are configured — then governance costs nothing and changes
// nothing), attaches it to both stores, and returns the cleanup that
// detaches it and releases every byte it still holds. Queries run one at a
// time under s.mu, so a single attached ledger is always the current
// query's; the server-wide pool still meters concurrent Systems or any
// future intra-system concurrency sharing it.
func (s *System) attachLedger() func() {
	led := govern.NewLedger(s.cfg.MemLimitBytes, s.memPool)
	if led == nil {
		return func() {}
	}
	s.hv.SetGovernor(led)
	s.dw.SetGovernor(led)
	return func() {
		s.hv.SetGovernor(nil)
		s.dw.SetGovernor(nil)
		led.ReleaseAll()
	}
}

// attachBudget creates the per-query retry budget (nil when RetryBudget
// is 0 — the budgeted paths then behave byte-identically to un-budgeted
// ones), attaches it to HV's stage-retry loops, and returns the cleanup
// that detaches it. Transfer and DW retry paths read it through s.qbud.
func (s *System) attachBudget() func() {
	bud := faults.NewBudget(s.cfg.RetryBudget)
	if bud == nil {
		return func() {}
	}
	s.qbud = bud
	s.hv.SetRetryBudget(bud)
	return func() {
		s.hv.SetRetryBudget(nil)
		s.qbud = nil
	}
}

// abandon books a query that died mid-plan to a governed abort: every
// simulated second it had already accrued (completed HV cuts, transfers,
// DW work, recovery) is charged to RECOVERY — work done and thrown away —
// and staged temp tables are discarded. The cause classifies the abort:
// context errors count as Canceled, memory-budget violations as
// MemAborted, contained worker panics as PanicsContained. Returns a typed
// error wrapping the cause.
func (s *System) abandon(cause error, rep *QueryReport, seq int) error {
	wasted := rep.HVSeconds + rep.TransferSeconds + rep.DWSeconds + rep.RecoverySeconds
	s.metrics.Recovery += wasted
	s.metrics.Retries += rep.Retries
	verb := "abandoned mid-plan"
	switch {
	case errors.Is(cause, govern.ErrMemLimit):
		s.metrics.MemAborted++
		verb = "aborted over memory budget"
	case errors.Is(cause, govern.ErrInternal):
		s.metrics.PanicsContained++
		verb = "failed by a contained panic"
	default:
		s.metrics.Canceled++
	}
	s.dw.ClearTemp()
	return fmt.Errorf("multistore: query %d %s (%.1fs charged to recovery): %w",
		seq, verb, wasted, cause)
}

func (s *System) runVariant(ctx context.Context, e history.Entry) (*QueryReport, error) {
	switch s.cfg.Variant {
	case VariantHVOnly:
		rep, err := s.runHVOnly(ctx, e)
		if err != nil {
			return nil, err
		}
		s.hv.Views.Reset() // no retention
		return rep, nil
	case VariantHVOp:
		return s.runHVOp(ctx, e)
	case VariantDWOnly:
		return s.runDWOnly(ctx, e)
	case VariantMSBasic:
		rep, err := s.runMultistore(ctx, e, optimizer.EmptyDesign())
		if err != nil {
			return nil, err
		}
		s.hv.Views.Reset() // transfers and by-products are discarded
		return rep, nil
	case VariantMSLru:
		return s.runMSLru(ctx, e)
	case VariantMSMiso:
		if s.reorgDue() {
			if err := s.reorg(s.window); err != nil {
				return nil, err
			}
		}
		return s.runMultistore(ctx, e, s.design())
	case VariantMSOra:
		if s.reorgDue() {
			if err := s.reorg(s.oracleWindow()); err != nil {
				return nil, err
			}
		}
		return s.runMultistore(ctx, e, s.design())
	case VariantMSOff:
		if !s.offTuned {
			if err := s.offlineTune(); err != nil {
				return nil, err
			}
			s.offTuned = true
		}
		rep, err := s.runMultistore(ctx, e, s.design())
		if err != nil {
			return nil, err
		}
		s.trimHVToDesign()
		return rep, nil
	default:
		return nil, fmt.Errorf("multistore: unknown variant %q", s.cfg.Variant)
	}
}

// CheckInvariants verifies the catalog-level invariants the recovery and
// serving machinery promise to preserve, regardless of faults, deadlines,
// or concurrent submission: the two stores never hold the same view
// (Vh ∩ Vd = ∅), both view sets fit their storage budgets, no
// reorganization moved more than the transfer budget or recorded negative
// byte counts, every TTI component is non-negative, and the query counter
// matches the report log. It is safe to call at any time.
func (s *System) CheckInvariants() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, v := range s.hv.Views.All() {
		if s.dw.Views.Has(v.Name) {
			return fmt.Errorf("multistore: view %q present in both HV and DW", v.Name)
		}
	}
	if got, bh := s.hv.Views.TotalBytes(), s.cfg.Tuner.Bh; got > bh {
		return fmt.Errorf("multistore: HV views %d bytes exceed Bh %d", got, bh)
	}
	if got, bd := s.dw.Views.TotalBytes(), s.cfg.Tuner.Bd; got > bd {
		return fmt.Errorf("multistore: DW views %d bytes exceed Bd %d", got, bd)
	}
	for _, rec := range s.reorgLog {
		if rec.Bytes < 0 || rec.RefundedBytes < 0 {
			return fmt.Errorf("multistore: reorg before query %d has negative byte accounting", rec.BeforeSeq)
		}
		if rec.Bytes > s.cfg.Tuner.Bt {
			return fmt.Errorf("multistore: reorg before query %d moved %d bytes, transfer budget %d",
				rec.BeforeSeq, rec.Bytes, s.cfg.Tuner.Bt)
		}
	}
	m := s.metrics
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"HVExe", m.HVExe}, {"DWExe", m.DWExe}, {"Transfer", m.Transfer},
		{"Tune", m.Tune}, {"ETL", m.ETL}, {"Recovery", m.Recovery},
	} {
		if c.v < 0 {
			return fmt.Errorf("multistore: negative %s component %f", c.name, c.v)
		}
	}
	if m.Queries != len(s.reports) {
		return fmt.Errorf("multistore: %d queries counted but %d reports", m.Queries, len(s.reports))
	}
	return nil
}

// reorgDue reports whether a reorganization phase precedes this query.
func (s *System) reorgDue() bool {
	return s.cfg.ReorgEvery > 0 && s.seq > 0 && s.seq%s.cfg.ReorgEvery == 0
}

// Reorganize triggers a reorganization phase immediately, outside the
// query-based schedule — the paper's time-based or activity-based
// invocation ("e.g., when the system is idle"). It only applies to the
// tuned variants; for others it is a no-op.
func (s *System) Reorganize() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.beginOp()
	var err error
	switch s.cfg.Variant {
	case VariantMSMiso:
		err = s.reorg(s.window)
	case VariantMSOra:
		err = s.reorg(s.oracleWindow())
	default:
		return nil
	}
	if err != nil {
		return err
	}
	return s.endOp(nil)
}

// oracleWindow builds the MS-ORA tuning window from the actual upcoming
// queries rather than history.
func (s *System) oracleWindow() *history.Window {
	w := history.NewWindow(s.cfg.HistoryLen, s.cfg.EpochLen, 1.0)
	end := s.seq + s.cfg.HistoryLen
	if end > len(s.future) {
		end = len(s.future)
	}
	// Reverse-weighted: the nearest future query matters most, so it goes
	// last (the window weights the end highest).
	for i := end - 1; i >= s.seq && i >= 0; i-- {
		w.Add(s.future[i])
	}
	return w
}

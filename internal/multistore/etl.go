package multistore

import (
	"context"
	"fmt"
	"sort"

	"miso/internal/expr"
	"miso/internal/faults"
	"miso/internal/logical"
	"miso/internal/storage"
	"miso/internal/transfer"
	"miso/internal/views"
)

// runETL performs DW-ONLY's up-front Extract-Transform-Load: for every log
// touched by the provided workload it extracts (in HV, the ETL engine) the
// union of fields and hoisted UDF columns the workload needs, transfers and
// loads the result into DW permanent space. All of it is charged to the ETL
// component of TTI. UDFs that DW cannot execute are applied during this ETL
// pass, as in the paper.
func (s *System) runETL() error {
	if len(s.future) == 0 {
		return fmt.Errorf("multistore: DW-ONLY requires ProvideFutureWorkload to scope the ETL")
	}

	type logNeed struct {
		plain map[string]logical.ExtractField // by OutName
		udf   map[string]logical.ExtractField
	}
	needs := map[string]*logNeed{}
	for _, e := range s.future {
		e.Plan.Walk(func(n *logical.Node) {
			if n.Kind != logical.KindExtract {
				return
			}
			logName := n.Children[0].LogName
			need, ok := needs[logName]
			if !ok {
				need = &logNeed{
					plain: map[string]logical.ExtractField{},
					udf:   map[string]logical.ExtractField{},
				}
				needs[logName] = need
			}
			for _, f := range n.Fields {
				if f.UDF != nil {
					need.udf[f.OutName] = f
				} else {
					need.plain[f.OutName] = f
				}
			}
		})
	}

	logNames := make([]string, 0, len(needs))
	for n := range needs {
		logNames = append(logNames, n)
	}
	sort.Strings(logNames)

	// The whole ETL pass shares one retry budget of a query's size: it is
	// a single phase, and a fault storm should fail it after a bounded
	// number of extra attempts rather than one full allowance per log.
	rbud := faults.NewBudget(s.cfg.RetryBudget)
	for _, logName := range logNames {
		need := needs[logName]
		node, err := buildETLExtract(logName, need.plain, need.udf)
		if err != nil {
			return err
		}
		res, err := s.hv.Execute(node, 0)
		if err != nil {
			return fmt.Errorf("multistore: ETL of %q: %w", logName, err)
		}
		s.metrics.ETL += res.Seconds
		s.addRecovery(res.RecoverySeconds, res.Retries)
		// Each UDF is applied as its own transformation pass over the
		// extracted data during ETL (the paper's Hive-based ETL runs
		// user code as separate jobs), costing a fraction of the base
		// extraction per UDF column.
		s.metrics.ETL += res.Seconds * 0.5 * float64(len(need.udf))
		bytes := res.Table.LogicalBytes()
		// The bulk load into DW permanent space runs through the fault-
		// injected pipeline; ETL is one-time and has nothing to degrade
		// to, so an exhausted load fails the ETL with a typed error.
		mv, mvErr := transfer.MoveContext(context.Background(), s.cfg.Transfer, bytes, transfer.KindPermanent, s.inj, s.retry, rbud)
		s.metrics.Retries += mv.Retries
		s.metrics.Recovery += mv.RecoverySeconds
		if mvErr != nil {
			s.metrics.Recovery += mv.Breakdown.Total()
			return fmt.Errorf("multistore: ETL load of %q: %w", logName, mvErr)
		}
		s.metrics.ETL += mv.Breakdown.Total()
		v := views.New(node, res.Table, 0)
		v.StampGenerations(func(name string) (int, bool) {
			log, err := s.cat.Log(name)
			if err != nil {
				return 0, false
			}
			return log.Generation, true
		})
		s.dw.Views.Add(v)
	}
	// The ETL engine's by-products are not retained: DW-ONLY serves
	// queries exclusively from the warehouse.
	s.hv.Views.Reset()
	return nil
}

// buildETLExtract assembles Scan -> Extract with the given plain fields
// (sorted) and UDF fields (sorted), mirroring the builder's leaf layout so
// query leaves subsume against the ETL view.
func buildETLExtract(logName string, plain, udf map[string]logical.ExtractField) (*logical.Node, error) {
	scan := &logical.Node{Kind: logical.KindScan, LogName: logName}
	scan.SetSchema(storage.MustSchema(storage.Column{Name: "_raw", Type: storage.KindString}))
	ex := &logical.Node{Kind: logical.KindExtract, Children: []*logical.Node{scan}}

	var cols []storage.Column
	for _, name := range sortedKeys(plain) {
		f := plain[name]
		ex.Fields = append(ex.Fields, f)
		cols = append(cols, storage.Column{Name: f.OutName, Type: f.Type})
	}
	for _, name := range sortedKeys(udf) {
		f := udf[name]
		// UDF inputs must be among the extracted plain fields.
		for _, c := range expr.Columns(f.UDF) {
			if _, ok := plain[c]; !ok {
				return nil, fmt.Errorf("multistore: ETL UDF column %q needs missing field %q", name, c)
			}
		}
		ex.Fields = append(ex.Fields, f)
		cols = append(cols, storage.Column{Name: f.OutName, Type: f.Type})
	}
	sch, err := storage.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	ex.SetSchema(sch)
	return ex, nil
}

func sortedKeys(m map[string]logical.ExtractField) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

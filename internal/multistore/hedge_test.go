package multistore_test

import (
	"testing"
	"time"

	"miso/internal/data"
	"miso/internal/faults"
	"miso/internal/multistore"
	"miso/internal/storage"
	"miso/internal/workload"
)

// runHedgeWorkload replays the full 32-query workload on an MS-MISO
// system under a DW-side fault storm that forces retry-exhaustion
// fallbacks, with or without hedged DW execution, and returns the durable
// digest, per-query result checksums, and the final metrics. The hedge
// threshold is forced to fire immediately so every split plan races a
// shadow.
func runHedgeWorkload(t *testing.T, hedge bool) (uint64, []uint64, multistore.Metrics) {
	t.Helper()
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	cfg := multistore.DefaultConfig(multistore.VariantMSMiso)
	cfg.SetBudgets(cat, 2.0, 10<<30)
	// A high DW-query fault rate with a short retry policy exhausts a
	// fraction of split plans, exercising the fallback path both ways.
	cfg.Faults = faults.Profile{}.With(faults.SiteDWQuery, 0.5)
	cfg.FaultSeed = 11
	cfg.Retry = faults.RetryPolicy{MaxAttempts: 2, BaseBackoff: 1, BackoffFactor: 2, MaxBackoff: 4}
	if hedge {
		cfg.Hedge = multistore.HedgeConfig{Enabled: true, Multiplier: 0.001, MinDelay: time.Nanosecond}
	}
	sys := multistore.New(cfg, cat)
	if err := sys.ProvideFutureWorkload(workload.SQLs()); err != nil {
		t.Fatalf("future workload: %v", err)
	}
	var sums []uint64
	for i, sql := range workload.SQLs() {
		rep, err := sys.Run(sql)
		if err != nil {
			t.Fatalf("hedge=%v query %d: %v", hedge, i, err)
		}
		sums = append(sums, storage.ChecksumTable(rep.Result))
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatalf("hedge=%v invariants: %v", hedge, err)
	}
	return sys.StateDigest(), sums, sys.Metrics()
}

// TestHedgeDigestIdentity is the hedged-request determinism regression:
// the same fault-storm workload must produce byte-identical query results
// and byte-identical durable state whether hedging is on (every DW phase
// races an HV shadow, winners committed in place of serial fallbacks) or
// off. Run with -race, this also exercises the shadow's concurrency.
func TestHedgeDigestIdentity(t *testing.T) {
	offDigest, offSums, offM := runHedgeWorkload(t, false)
	onDigest, onSums, onM := runHedgeWorkload(t, true)

	if offM.Fallbacks == 0 {
		t.Fatalf("fault storm produced no fallbacks; the test exercises nothing")
	}
	if offM.Fallbacks != onM.Fallbacks {
		t.Fatalf("fallbacks diverged: off %d, on %d", offM.Fallbacks, onM.Fallbacks)
	}
	for i := range offSums {
		if offSums[i] != onSums[i] {
			t.Errorf("query %d result checksum diverged: off %x, on %x", i, offSums[i], onSums[i])
		}
	}
	if offDigest != onDigest {
		t.Fatalf("durable-state digest diverged: hedge off %x, hedge on %x", offDigest, onDigest)
	}
	// The hedge plane must actually have engaged (threshold fires
	// immediately), and its counters must stay out of the digest.
	if onM.Hedges == 0 {
		t.Fatalf("hedging enabled with an always-fire threshold but no hedges armed")
	}
	t.Logf("hedges %d, wins %d, canceled %d over %d fallbacks",
		onM.Hedges, onM.HedgeWins, onM.HedgesCanceled, onM.Fallbacks)
}

// TestHedgeDisabledIsStrictNoOp: with hedging disabled the config is the
// zero value and the DW phase takes the exact pre-hedge code path — no
// tracker, no timer. A run with an enabled-but-never-firing hedge (huge
// threshold) must also be digest-identical to disabled.
func TestHedgeDisabledIsStrictNoOp(t *testing.T) {
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	run := func(h multistore.HedgeConfig) uint64 {
		cfg := multistore.DefaultConfig(multistore.VariantMSMiso)
		cfg.SetBudgets(cat, 2.0, 10<<30)
		cfg.Hedge = h
		sys := multistore.New(cfg, cat)
		if err := sys.ProvideFutureWorkload(workload.SQLs()); err != nil {
			t.Fatal(err)
		}
		for i, sql := range workload.SQLs() {
			if _, err := sys.Run(sql); err != nil {
				t.Fatalf("query %d: %v", i, err)
			}
		}
		return sys.StateDigest()
	}
	off := run(multistore.HedgeConfig{})
	never := run(multistore.HedgeConfig{Enabled: true, Multiplier: 1000, MinDelay: time.Hour})
	if off != never {
		t.Fatalf("digest diverged: disabled %x, enabled-but-idle %x", off, never)
	}
}

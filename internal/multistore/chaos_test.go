package multistore_test

import (
	"testing"

	"miso/internal/data"
	"miso/internal/faults"
	"miso/internal/multistore"
	"miso/internal/workload"
)

// TestChaosWorkloadSurvivesAndHoldsInvariants replays the full evolving
// workload under a 5% uniform fault profile and checks that recovery keeps
// the system consistent: every query completes, the stores never hold the
// same view twice, storage budgets hold after every step, no
// reorganization exceeds the transfer budget, and the recovery cost is
// accounted as its own TTI component.
func TestChaosWorkloadSurvivesAndHoldsInvariants(t *testing.T) {
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	cfg := multistore.DefaultConfig(multistore.VariantMSMiso)
	cfg.SetBudgets(cat, 2.0, 10<<30)
	cfg.Faults = faults.Uniform(0.05)
	cfg.FaultSeed = 42
	sys := multistore.New(cfg, cat)
	if err := sys.ProvideFutureWorkload(workload.SQLs()); err != nil {
		t.Fatalf("future workload: %v", err)
	}

	checkInvariants := func(i int) {
		t.Helper()
		for _, v := range sys.HV().Views.All() {
			if sys.DW().Views.Has(v.Name) {
				t.Fatalf("after query %d: view %q in both HV and DW", i, v.Name)
			}
		}
		if got, bd := sys.DW().Views.TotalBytes(), cfg.Tuner.Bd; got > bd {
			t.Fatalf("after query %d: DW views %d bytes exceed Bd %d", i, got, bd)
		}
		if got, bh := sys.HV().Views.TotalBytes(), cfg.Tuner.Bh; got > bh {
			t.Fatalf("after query %d: HV views %d bytes exceed Bh %d", i, got, bh)
		}
	}

	for i, sql := range workload.SQLs() {
		rep, err := sys.Run(sql)
		if err != nil {
			t.Fatalf("query %d (%s) did not survive faults: %v", i, workload.Evolving()[i].Name, err)
		}
		if rep.Result == nil {
			t.Fatalf("query %d completed without a result", i)
		}
		checkInvariants(i)
	}

	if got := len(sys.Reports()); got != len(workload.SQLs()) {
		t.Fatalf("completed %d of %d queries", got, len(workload.SQLs()))
	}
	for _, rec := range sys.ReorgLog() {
		if rec.Bytes > cfg.Tuner.Bt {
			t.Errorf("reorg before query %d moved %d bytes, transfer budget %d",
				rec.BeforeSeq, rec.Bytes, cfg.Tuner.Bt)
		}
	}
	m := sys.Metrics()
	if m.Recovery <= 0 {
		t.Error("expected nonzero recovery time under a 5% fault profile")
	}
	if m.TTI() <= m.HVExe+m.DWExe+m.Transfer+m.Tune+m.ETL {
		t.Error("TTI must include the recovery component")
	}
	if sys.FaultInjector().TotalInjected() == 0 {
		t.Error("injector reports no injected faults at a 5% rate")
	}

	// The same seed must reproduce the exact run.
	sys2 := multistore.New(cfg, cat)
	if err := sys2.ProvideFutureWorkload(workload.SQLs()); err != nil {
		t.Fatalf("future workload: %v", err)
	}
	for i, sql := range workload.SQLs() {
		if _, err := sys2.Run(sql); err != nil {
			t.Fatalf("replay query %d: %v", i, err)
		}
	}
	if a, b := sys.Metrics(), sys2.Metrics(); a != b {
		t.Errorf("chaos run not deterministic: %+v vs %+v", a, b)
	}
}

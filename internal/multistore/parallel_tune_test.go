package multistore_test

import (
	"testing"

	"miso/internal/data"
	"miso/internal/multistore"
	"miso/internal/workload"
)

// runWorkloadWithTuneWorkers replays the full 32-query evolving workload
// on a fresh zero-fault MS-MISO system whose tuner uses the given what-if
// worker pool size, and returns the system's durable-state digest.
func runWorkloadWithTuneWorkers(t *testing.T, workers int) uint64 {
	t.Helper()
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	cfg := multistore.DefaultConfig(multistore.VariantMSMiso)
	cfg.SetBudgets(cat, 2.0, 10<<30)
	cfg.Tuner.TuneWorkers = workers
	sys := multistore.New(cfg, cat)
	if err := sys.ProvideFutureWorkload(workload.SQLs()); err != nil {
		t.Fatalf("future workload: %v", err)
	}
	for i, sql := range workload.SQLs() {
		if _, err := sys.Run(sql); err != nil {
			t.Fatalf("workers=%d query %d: %v", workers, i, err)
		}
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatalf("workers=%d invariants: %v", workers, err)
	}
	return sys.StateDigest()
}

// TestStateDigestIdenticalAcrossTuneWorkers is the end-to-end determinism
// regression for parallel what-if costing: a full zero-fault workload run
// — every query, every reorganization, every design the tuner picks —
// must leave byte-identical durable state whether the tuner costs
// serially or across eight workers.
func TestStateDigestIdenticalAcrossTuneWorkers(t *testing.T) {
	serial := runWorkloadWithTuneWorkers(t, 1)
	parallel := runWorkloadWithTuneWorkers(t, 8)
	if serial != parallel {
		t.Fatalf("durable-state digest diverged: workers=1 %x, workers=8 %x", serial, parallel)
	}
}

package multistore

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"miso/internal/dw"
	"miso/internal/history"
	"miso/internal/hv"
	"miso/internal/logical"
	"miso/internal/optimizer"
)

// HedgeConfig tunes hedged DW execution (Config.Hedge). The zero value
// disables hedging entirely; an enabled config with zero fields gets the
// defaults below.
type HedgeConfig struct {
	// Enabled turns hedging on. Off, the DW phase runs exactly as before —
	// no goroutine, no timer, no tracker.
	Enabled bool
	// Multiplier scales the sliding-window p95 of observed DW wall
	// durations into the hedge threshold: the shadow starts once the DW
	// side has run Multiplier×p95 without finishing. Zero means 2.
	Multiplier float64
	// MinDelay floors the threshold so cold starts and microsecond DW
	// queries don't hedge every call. Zero means 25ms.
	MinDelay time.Duration
	// Window is the sliding-window size for observed durations. Zero
	// means 32.
	Window int
}

func (c HedgeConfig) withDefaults() HedgeConfig {
	if c.Multiplier <= 0 {
		c.Multiplier = 2
	}
	if c.MinDelay <= 0 {
		c.MinDelay = 25 * time.Millisecond
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	return c
}

// hedgeTracker keeps the sliding window of observed DW wall durations and
// derives the adaptive hedge threshold from it. It is only touched from
// the serialized query flow (under s.mu), so it needs no lock. Durations
// are real wall-clock, not simulated seconds: the threshold governs only
// when the shadow starts, never what any side computes or charges.
type hedgeTracker struct {
	cfg  HedgeConfig
	durs []time.Duration
	next int
}

func newHedgeTracker(cfg HedgeConfig) *hedgeTracker {
	if !cfg.Enabled {
		return nil
	}
	return &hedgeTracker{cfg: cfg, durs: make([]time.Duration, 0, cfg.Window)}
}

func (t *hedgeTracker) observe(d time.Duration) {
	if t == nil {
		return
	}
	if len(t.durs) < t.cfg.Window {
		t.durs = append(t.durs, d)
		return
	}
	t.durs[t.next] = d
	t.next = (t.next + 1) % t.cfg.Window
}

// threshold returns MinDelay until enough samples exist, then
// max(MinDelay, Multiplier × p95 of the window).
func (t *hedgeTracker) threshold() time.Duration {
	if len(t.durs) < 3 {
		return t.cfg.MinDelay
	}
	sorted := append([]time.Duration(nil), t.durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	p95 := sorted[(len(sorted)*95)/100]
	th := time.Duration(t.cfg.Multiplier * float64(p95))
	if th < t.cfg.MinDelay {
		th = t.cfg.MinDelay
	}
	return th
}

// hedgeRun is one armed hedge: a timer that, after the adaptive threshold,
// starts computing the HV fallback plan (hv.BeginExecute — real tuples,
// zero store-state effects) in a goroutine racing the DW side. The timer
// callback must never touch s.metrics or anything under s.mu: the main
// query flow holds s.mu for the whole query.
type hedgeRun struct {
	cancel context.CancelFunc
	timer  *time.Timer
	// done is closed by the timer callback when it finishes (whether it
	// ran the shadow or observed the abort flag); it never closes when
	// timer.Stop preempts the callback entirely.
	done chan struct{}

	mu      sync.Mutex
	started bool
	aborted bool

	pending *hv.Pending
	err     error
}

// armHedge schedules the shadow for the given (already rewritten,
// signature-prewarmed) HV fallback plan.
func (s *System) armHedge(ctx context.Context, plan *logical.Node) *hedgeRun {
	hctx, cancel := context.WithCancel(ctx)
	hr := &hedgeRun{cancel: cancel, done: make(chan struct{})}
	hr.timer = time.AfterFunc(s.hedge.threshold(), func() {
		hr.mu.Lock()
		if hr.aborted {
			hr.mu.Unlock()
			close(hr.done)
			return
		}
		hr.started = true
		hr.mu.Unlock()
		hr.pending, hr.err = s.hv.BeginExecute(hctx, plan)
		close(hr.done)
	})
	return hr
}

// discard cancels the hedge — the DW side won (or aborted). It returns
// only after any in-flight shadow has fully stopped, so no goroutine
// outlives the query. Reports whether the shadow had actually started
// (for the HedgesCanceled counter). Nil-safe.
func (hr *hedgeRun) discard() bool {
	if hr == nil {
		return false
	}
	hr.mu.Lock()
	hr.aborted = true
	started := hr.started
	hr.mu.Unlock()
	stopped := hr.timer.Stop()
	hr.cancel()
	if !stopped {
		// The callback fired before Stop: it will close done either way
		// (abort branch or a canceled shadow run).
		<-hr.done
	}
	return started
}

// await collects the shadow's result for commit — the DW side lost. If the
// hedge threshold never fired (the timer is still pending), it reports
// ok=false and the caller runs the serial fallback instead. If the timer
// fired, the shadow counts even when its goroutine lost the scheduling
// race and hasn't run yet: await lets it proceed and waits — the decision
// "hedge before DW finished" was made by the timer, not by the scheduler.
// Nil-safe.
func (hr *hedgeRun) await() (p *hv.Pending, err error, ok bool) {
	if hr == nil {
		return nil, nil, false
	}
	hr.mu.Lock()
	started := hr.started
	if !started && hr.timer.Stop() {
		// Timer still pending: no shadow will ever run.
		hr.aborted = true
		hr.mu.Unlock()
		hr.cancel()
		return nil, nil, false
	}
	// Either the shadow is running (or finished), or the callback fired
	// and is queued; leave aborted unset so a queued callback runs it.
	hr.mu.Unlock()
	<-hr.done
	hr.cancel()
	return hr.pending, hr.err, true
}

// executeDWHedged runs the DW part of a split plan, arming a hedge when
// enabled. The returned hedgeRun (nil when hedging is off) must be
// resolved by the caller on every path: discard() when the DW side's
// result is kept or the query aborts, await() when the DW side exhausted
// its retries and the shadow may stand in for the serial fallback.
//
// The fallback plan is rewritten against the HV views *now*, but the DW
// phase mutates no HV view state, so it is the same plan the serial
// fallback would build later — that identity is what makes the committed
// shadow byte-equivalent to the serial path. Signatures are prewarmed on
// this (serialized) flow because logical.Node memoizes them lazily.
func (s *System) executeDWHedged(ctx context.Context, e history.Entry, dwPart *logical.Node) (*dw.Result, *hedgeRun, error) {
	if s.hedge == nil {
		res, err := s.dw.ExecuteContext(ctx, dwPart)
		return res, nil, err
	}
	plan := optimizer.RewriteWithViews(e.Plan, s.hv.Views)
	plan.Walk(func(n *logical.Node) { n.Signature() })
	hr := s.armHedge(ctx, plan)
	// Hedges counts armed hedges, decided here on the serialized flow —
	// deterministic regardless of whether the shadow goroutine wins the
	// scheduling race before the DW side finishes.
	s.metrics.Hedges++
	// One scheduler pass so a due timer (sub-millisecond thresholds) gets
	// its callback queued even on GOMAXPROCS=1, where a CPU-bound DW
	// phase would otherwise never yield.
	runtime.Gosched()
	start := time.Now()
	res, err := s.dw.ExecuteContext(ctx, dwPart)
	s.hedge.observe(time.Since(start))
	return res, hr, err
}

// fallbackFromPending completes a query from the hedge shadow's computed
// result: the deferred Commit runs at exactly the program point the serial
// fallback's execution would have, so it consumes the same injector draws,
// records the same statistics, and captures the same views — the report
// and StateDigest are byte-identical to the unhedged run; only the
// wall-clock already spent racing is saved.
func (s *System) fallbackFromPending(ctx context.Context, e history.Entry, rep *QueryReport, cause error, p *hv.Pending) (*QueryReport, error) {
	s.dw.ClearTemp()
	res, err := p.Commit(ctx, e.Seq)
	if err != nil {
		if isAbortErr(err) {
			return nil, s.abandon(err, rep, e.Seq)
		}
		return nil, fmt.Errorf("multistore: query %d failed (%v) and its HV fallback failed too: %w", e.Seq, cause, err)
	}
	s.metrics.HedgeWins++
	rep.HedgeWon = true
	return s.bookFallback(e, rep, cause, p.Plan(), res), nil
}

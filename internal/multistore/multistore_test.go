package multistore_test

import (
	"sort"
	"strings"
	"testing"

	"miso/internal/data"
	"miso/internal/multistore"
	"miso/internal/storage"
	"miso/internal/workload"
)

func runSystem(t *testing.T, v multistore.Variant) *multistore.System {
	return runSystemScale(t, v, true)
}

func runSystemScale(t *testing.T, v multistore.Variant, small bool) *multistore.System {
	t.Helper()
	cfgData := data.DefaultConfig()
	if small {
		cfgData = data.SmallConfig()
	}
	cat, err := data.Generate(cfgData)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	cfg := multistore.DefaultConfig(v)
	cfg.SetBudgets(cat, 2.0, 10<<30)
	sys := multistore.New(cfg, cat)
	if err := sys.ProvideFutureWorkload(workload.SQLs()); err != nil {
		t.Fatalf("future workload: %v", err)
	}
	for i, sql := range workload.SQLs() {
		if _, err := sys.Run(sql); err != nil {
			t.Fatalf("%s query %d (%s): %v", v, i, workload.Evolving()[i].Name, err)
		}
	}
	return sys
}

// rowFingerprint canonicalizes a result table to an order-independent
// multiset fingerprint.
func rowFingerprint(tb *storage.Table) []string {
	out := make([]string, 0, tb.NumRows())
	for _, r := range tb.Rows {
		var sb strings.Builder
		for _, v := range r {
			sb.WriteString(v.String())
			sb.WriteByte('|')
		}
		out = append(out, sb.String())
	}
	sort.Strings(out)
	return out
}

func sameResults(a, b *storage.Table) bool {
	fa, fb := rowFingerprint(a), rowFingerprint(b)
	if len(fa) != len(fb) {
		return false
	}
	for i := range fa {
		if fa[i] != fb[i] {
			return false
		}
	}
	return true
}

// TestVariantsAgreeOnResults is the core correctness property: every system
// variant must return exactly the same rows for every query — views,
// splits, and tuning are performance mechanisms only.
func TestVariantsAgreeOnResults(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload comparison is slow")
	}
	ref := runSystem(t, multistore.VariantHVOnly)
	for _, v := range []multistore.Variant{
		multistore.VariantMSBasic,
		multistore.VariantHVOp,
		multistore.VariantMSMiso,
		multistore.VariantMSLru,
		multistore.VariantDWOnly,
	} {
		sys := runSystem(t, v)
		for i, rep := range sys.Reports() {
			refRep := ref.Reports()[i]
			if !sameResults(rep.Result, refRep.Result) {
				t.Errorf("%s query %d (%s): %d rows vs HV-ONLY %d rows or content mismatch",
					v, i, workload.Evolving()[i].Name, rep.ResultRows, refRep.ResultRows)
			}
		}
	}
}

func TestMisoBeatsBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload comparison is slow")
	}
	hvOnly := runSystemScale(t, multistore.VariantHVOnly, false).Metrics()
	basic := runSystemScale(t, multistore.VariantMSBasic, false).Metrics()
	miso := runSystemScale(t, multistore.VariantMSMiso, false).Metrics()

	t.Logf("HV-ONLY TTI=%.0f (hv=%.0f)", hvOnly.TTI(), hvOnly.HVExe)
	t.Logf("MS-BASIC TTI=%.0f (hv=%.0f xfer=%.0f dw=%.0f)",
		basic.TTI(), basic.HVExe, basic.Transfer, basic.DWExe)
	t.Logf("MS-MISO TTI=%.0f (hv=%.0f xfer=%.0f dw=%.0f tune=%.0f)",
		miso.TTI(), miso.HVExe, miso.Transfer, miso.DWExe, miso.Tune)

	if miso.TTI() >= hvOnly.TTI() {
		t.Errorf("MS-MISO (%.0f) not faster than HV-ONLY (%.0f)", miso.TTI(), hvOnly.TTI())
	}
	if miso.TTI() >= basic.TTI() {
		t.Errorf("MS-MISO (%.0f) not faster than MS-BASIC (%.0f)", miso.TTI(), basic.TTI())
	}
	if miso.Reorgs == 0 {
		t.Error("MS-MISO performed no reorganizations")
	}
}

package multistore

import (
	"fmt"
	"strings"

	"miso/internal/durability"
	"miso/internal/logical"
)

// AppendToLog ingests new records into a base log — the append-only update
// model the paper's Section 6 sketches as future work. Opportunistic views
// derived from the log become stale; this implementation invalidates them
// conservatively: every view (in either store) whose definition scans the
// log is dropped, and the statistics cache entries for subtrees over the
// log are discarded so future estimates reflect the new size. Views over
// other logs are untouched, and the next queries rebuild the dropped views
// organically — the same opportunistic mechanism that created them.
func (s *System) AppendToLog(name string, lines []string) (dropped int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.beginOp()
	dropped, err = s.appendLocked(name, lines)
	if err != nil {
		return dropped, err
	}
	return dropped, s.endOp(nil)
}

func (s *System) appendLocked(name string, lines []string) (dropped int, err error) {
	log, err := s.cat.Log(name)
	if err != nil {
		return 0, err
	}
	if len(lines) == 0 {
		return 0, nil
	}
	for _, l := range lines {
		log.AppendLine(l)
	}

	scans := func(def *logical.Node) bool {
		found := false
		def.Walk(func(n *logical.Node) {
			if n.Kind == logical.KindScan && n.LogName == name {
				found = true
			}
		})
		return found
	}
	for _, v := range s.hv.Views.All() {
		if scans(v.Def) {
			s.hv.Views.Remove(v.Name)
			dropped++
		}
	}
	for _, v := range s.dw.Views.All() {
		if scans(v.Def) {
			s.dw.Views.Remove(v.Name)
			dropped++
		}
	}
	s.est.InvalidateMatching(func(sig string) bool {
		return strings.Contains(sig, "scan("+name+")")
	})
	// The log's content version advanced: refresh the reuse plane's
	// version mirror (fingerprints over the new content differ, making old
	// entries unreachable) and drop the cached results outright.
	s.syncLogVersion(name)
	s.invalidateReuse()
	return dropped, nil
}

// RefreshLog replaces a log wholesale (a new generation of the data set)
// and invalidates everything derived from it.
func (s *System) RefreshLog(name string, lines []string) (dropped int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.beginOp()
	log, err := s.cat.Log(name)
	if err != nil {
		return 0, err
	}
	log.Reset()
	// The generation bump alone invalidates cached fingerprints even when
	// the refresh carries no lines (appendLocked returns early then).
	s.syncLogVersion(name)
	s.invalidateReuse()
	dropped, err = s.appendLocked(name, lines)
	if err != nil {
		return dropped, fmt.Errorf("multistore: refresh %q: %w", name, err)
	}
	return dropped, s.endOp(&durability.Record{
		Kind: durability.KindLogGen, Name: name,
		Seq: int64(s.seq), Gen: int64(log.Generation),
	})
}

package multistore

import (
	"context"
	"fmt"

	"miso/internal/core"
	"miso/internal/durability"
	"miso/internal/faults"
	"miso/internal/history"
	"miso/internal/hv"
	"miso/internal/logical"
	"miso/internal/optimizer"
	"miso/internal/storage"
	"miso/internal/transfer"
	"miso/internal/views"
)

// runHVOnly executes the whole query in HV with no views.
func (s *System) runHVOnly(ctx context.Context, e history.Entry) (*QueryReport, error) {
	res, err := s.hv.ExecuteContext(ctx, e.Plan, e.Seq)
	if err != nil {
		if isAbortErr(err) {
			return nil, s.abandon(err, &QueryReport{}, e.Seq)
		}
		return nil, fmt.Errorf("multistore: query %d in HV: %w", e.Seq, err)
	}
	s.metrics.HVExe += res.Seconds
	s.addRecovery(res.RecoverySeconds, res.Retries)
	return &QueryReport{
		Seq: e.Seq, SQL: e.SQL,
		HVSeconds:       res.Seconds,
		RecoverySeconds: res.RecoverySeconds,
		Retries:         res.Retries,
		HVOps:           countOps(e.Plan),
		HVOnly:          true,
		NewViews:        len(res.NewViews),
		ResultRows:      res.Table.NumRows(),
		Result:          res.Table,
	}, nil
}

// runHVOp executes in HV, reusing and retaining opportunistic views under
// an LRU policy within the HV storage budget.
func (s *System) runHVOp(ctx context.Context, e history.Entry) (*QueryReport, error) {
	plan := optimizer.RewriteWithViews(e.Plan, s.hv.Views)
	res, err := s.hv.ExecuteContext(ctx, plan, e.Seq)
	if err != nil {
		if isAbortErr(err) {
			return nil, s.abandon(err, &QueryReport{}, e.Seq)
		}
		return nil, fmt.Errorf("multistore: query %d in HV: %w", e.Seq, err)
	}
	used := s.markUsedViews(plan, e.Seq)
	views.EvictLRU(s.hv.Views, s.cfg.Tuner.Bh)
	s.metrics.HVExe += res.Seconds
	s.addRecovery(res.RecoverySeconds, res.Retries)
	return &QueryReport{
		Seq: e.Seq, SQL: e.SQL,
		HVSeconds:       res.Seconds,
		RecoverySeconds: res.RecoverySeconds,
		Retries:         res.Retries,
		HVOps:           countOps(plan),
		HVOnly:          true,
		UsedViews:       used,
		NewViews:        len(res.NewViews),
		ResultRows:      res.Table.NumRows(),
		Result:          res.Table,
	}, nil
}

// runDWOnly serves the query entirely from DW after the one-time ETL.
func (s *System) runDWOnly(ctx context.Context, e history.Entry) (*QueryReport, error) {
	if !s.etlDone {
		if err := s.runETL(); err != nil {
			return nil, err
		}
		s.etlDone = true
	}
	plan := optimizer.RewriteWithViews(e.Plan, s.dw.Views)
	if hasRawScan(plan) {
		return nil, fmt.Errorf("multistore: DW-ONLY query %d not covered by the ETL'd data", e.Seq)
	}
	res, err := s.dw.ExecuteContext(ctx, plan)
	if err != nil {
		if isAbortErr(err) {
			return nil, s.abandon(err, &QueryReport{}, e.Seq)
		}
		return nil, fmt.Errorf("multistore: query %d in DW: %w", e.Seq, err)
	}
	rep := &QueryReport{
		Seq: e.Seq, SQL: e.SQL,
		DWSeconds:  res.Seconds,
		DWOps:      countOps(plan),
		BypassedHV: true,
		ResultRows: res.Table.NumRows(),
		Result:     res.Table,
	}
	// DW-ONLY has no other store to degrade to: injected query failures
	// retry in place and exhaustion fails the query.
	if err := s.simulateDWQuery(ctx, res.Seconds, rep); err != nil {
		return nil, fmt.Errorf("multistore: query %d in DW: %w", e.Seq, err)
	}
	rep.UsedViews = s.markUsedViews(plan, e.Seq)
	s.metrics.DWExe += res.Seconds
	s.addRecovery(rep.RecoverySeconds, rep.Retries)
	return rep, nil
}

// runMultistore executes the optimizer's chosen split plan. Migrated
// working sets live in DW temp space for the duration of the query only;
// HV by-products accumulate in the store and callers that do not retain
// them (MS-BASIC, MS-OFF) reset or trim the HV view set afterwards.
func (s *System) runMultistore(ctx context.Context, e history.Entry, d optimizer.Design) (*QueryReport, error) {
	mp, err := s.opt.Choose(e.Plan, d)
	if err != nil {
		return nil, err
	}
	rep := &QueryReport{Seq: e.Seq, SQL: e.SQL}
	if mp.HVOnly {
		res, err := s.hv.ExecuteContext(ctx, mp.HVPlan, e.Seq)
		if err != nil {
			if isAbortErr(err) {
				return nil, s.abandon(err, rep, e.Seq)
			}
			return nil, fmt.Errorf("multistore: query %d in HV: %w", e.Seq, err)
		}
		rep.HVSeconds = res.Seconds
		rep.RecoverySeconds = res.RecoverySeconds
		rep.Retries = res.Retries
		rep.HVOps = countOps(mp.HVPlan)
		rep.HVOnly = true
		rep.NewViews = len(res.NewViews)
		rep.ResultRows = res.Table.NumRows()
		rep.Result = res.Table
		rep.UsedViews = s.markUsedViews(mp.HVPlan, e.Seq)
		s.metrics.HVExe += res.Seconds
		s.addRecovery(res.RecoverySeconds, res.Retries)
		return rep, nil
	}

	bypassed := true
	for _, cut := range mp.Cuts {
		if cut.DWView != nil {
			continue // answered directly from a DW-resident view
		}
		bypassed = false
		// Subresult reuse: a cut whose base-data definition is resident in
		// the semantic cache skips HV execution entirely — the migrated
		// working set comes from the digest-verified cached table at zero
		// HV cost. The transfer and staging below still run: the working
		// set must still reach DW temp space either way.
		cfp, cok := s.cutFingerprint(cut.Node)
		var res *hv.Result
		if cok {
			if t, ok := s.reuse.cache.Get(cfp); ok {
				res = &hv.Result{Table: t}
				rep.SubplanHits++
				s.metrics.SubplanHits++
			}
		}
		if res == nil {
			var err error
			res, err = s.hv.ExecuteContext(ctx, cut.HVPlan, e.Seq)
			if err != nil {
				if isAbortErr(err) {
					return nil, s.abandon(err, rep, e.Seq)
				}
				return nil, fmt.Errorf("multistore: query %d in HV: %w", e.Seq, err)
			}
			rep.HVSeconds += res.Seconds
			rep.RecoverySeconds += res.RecoverySeconds
			rep.Retries += res.Retries
			rep.HVOps += countOps(cut.HVPlan)
			rep.NewViews += len(res.NewViews)
			rep.UsedViews = append(rep.UsedViews, s.markUsedViews(cut.HVPlan, e.Seq)...)
			if cok {
				// Chain boundary: the freshly computed working set becomes
				// a cached subresult for later cuts and queries.
				s.reuse.cache.Put(cfp, res.Table)
			}
		}

		// Deadline checkpoint before committing to the transfer: an
		// abandoned query must not consume injector draws the sequential
		// path would have used differently.
		if ctx.Err() != nil {
			return nil, s.abandon(ctx.Err(), rep, e.Seq)
		}
		bytes := res.Table.LogicalBytes()
		sum := storage.ChecksumTable(res.Table)
		if err := s.journal(&durability.Record{
			Kind: durability.KindTransferBegin, Name: cut.TempName,
			Seq: int64(e.Seq), Bytes: bytes, Checksum: sum,
		}); err != nil {
			return nil, err
		}
		if failed, _ := s.inj.Check(faults.SiteCrashTransfer); failed {
			return nil, fmt.Errorf("multistore: query %d transfer: %w", e.Seq, faults.Crash(faults.SiteCrashTransfer))
		}
		mv, mvErr := transfer.MoveContext(ctx, s.cfg.Transfer, bytes, transfer.KindWorkingSet, s.inj, s.retry, s.qbud)
		rep.Retries += mv.Retries
		if mvErr != nil {
			// The move aborted: everything it paid is wasted. Degrade
			// gracefully by completing the query entirely in HV.
			rep.RecoverySeconds += mv.WastedSeconds()
			if err := s.journal(&durability.Record{
				Kind: durability.KindTransferAbort, Name: cut.TempName, Seq: int64(e.Seq),
			}); err != nil {
				return nil, err
			}
			return s.fallbackHV(ctx, e, rep, mvErr)
		}
		// Load-time integrity check: the working set's checksum is
		// verified as DW stages it. Injected corruption means the bytes
		// were damaged in flight — the whole move is wasted and the query
		// degrades to HV (the cause is ErrCorrupt, not exhaustion, so the
		// serving layer's circuit breaker ignores it).
		if failed, _ := s.inj.Check(faults.SiteViewCorrupt); failed {
			rep.RecoverySeconds += mv.Breakdown.Total() + mv.RecoverySeconds
			if err := s.journal(&durability.Record{
				Kind: durability.KindTransferAbort, Name: cut.TempName, Seq: int64(e.Seq),
			}); err != nil {
				return nil, err
			}
			return s.fallbackHV(ctx, e, rep, faults.Corrupt(cut.TempName))
		}
		rep.RecoverySeconds += mv.RecoverySeconds
		rep.TransferBytes += bytes
		rep.TransferSeconds += mv.Breakdown.Total()
		s.dw.StageTemp(cut.TempName, res.Table)
		if err := s.journal(&durability.Record{
			Kind: durability.KindTransferCommit, Name: cut.TempName, Seq: int64(e.Seq),
		}); err != nil {
			return nil, err
		}
	}
	rep.BypassedHV = bypassed

	if ctx.Err() != nil {
		return nil, s.abandon(ctx.Err(), rep, e.Seq)
	}
	dwRes, hr, err := s.executeDWHedged(ctx, e, mp.DWPart)
	if err != nil {
		hr.discard()
		if isAbortErr(err) {
			return nil, s.abandon(err, rep, e.Seq)
		}
		return nil, fmt.Errorf("multistore: query %d in DW: %w", e.Seq, err)
	}
	if err := s.simulateDWQuery(ctx, dwRes.Seconds, rep); err != nil {
		// DW gave out mid-query: degrade to HV. If the hedge shadow
		// already computed the fallback plan, commit it in place of the
		// serial re-execution (byte-identical state, wall-clock saved); a
		// shadow that failed or never started falls through to the serial
		// path, which replays exactly the draws an unhedged run would.
		if p, perr, ok := hr.await(); ok {
			if perr == nil {
				return s.fallbackFromPending(ctx, e, rep, err, p)
			}
			s.metrics.HedgesCanceled++
		}
		return s.fallbackHV(ctx, e, rep, err)
	}
	if hr.discard() {
		s.metrics.HedgesCanceled++
	}
	rep.DWSeconds = dwRes.Seconds
	rep.DWOps = countOps(mp.DWPart)
	rep.ResultRows = dwRes.Table.NumRows()
	rep.Result = dwRes.Table
	rep.UsedViews = append(rep.UsedViews, s.markUsedViews(mp.DWPart, e.Seq)...)
	s.dw.ClearTemp()

	s.metrics.HVExe += rep.HVSeconds
	s.metrics.Transfer += rep.TransferSeconds
	s.metrics.DWExe += rep.DWSeconds
	s.addRecovery(rep.RecoverySeconds, rep.Retries)
	return rep, nil
}

// simulateDWQuery replays injected DW-side failures for a query that took
// sec seconds: each failure wastes the completed fraction plus a backoff,
// and giving up — per-phase retry exhaustion, a dead deadline, or a dry
// retry budget — returns the typed fault error (the caller decides whether
// to degrade to HV). Returns nil when the query eventually sticks.
func (s *System) simulateDWQuery(ctx context.Context, sec float64, rep *QueryReport) error {
	if !s.inj.Enabled() {
		return nil
	}
	for attempt := 1; ; attempt++ {
		failed, frac := s.inj.Check(faults.SiteDWQuery)
		if !failed {
			return nil
		}
		rep.Retries++
		rep.RecoverySeconds += frac*sec + s.retry.Backoff(attempt)
		f := &faults.Fault{Site: faults.SiteDWQuery, Op: "dw query", Attempt: attempt}
		switch {
		case attempt >= s.retry.MaxAttempts:
			return faults.Exhausted(f)
		case ctx.Err() != nil:
			return fmt.Errorf("abandoned before retry: %w", ctx.Err())
		case !s.qbud.Take():
			return faults.BudgetExhausted(f)
		}
	}
}

// fallbackHV completes a query entirely in HV after its multistore plan
// failed mid-flight (aborted transfer or exhausted DW retries). Time
// already paid stays in its component; the fallback execution itself is
// the penalty, charged to RECOVERY. This is the graceful-degradation path:
// HV always holds the base logs, so any query can complete there.
func (s *System) fallbackHV(ctx context.Context, e history.Entry, rep *QueryReport, cause error) (*QueryReport, error) {
	s.dw.ClearTemp()
	plan := optimizer.RewriteWithViews(e.Plan, s.hv.Views)
	res, err := s.hv.ExecuteContext(ctx, plan, e.Seq)
	if err != nil {
		if isAbortErr(err) {
			return nil, s.abandon(err, rep, e.Seq)
		}
		return nil, fmt.Errorf("multistore: query %d failed (%v) and its HV fallback failed too: %w", e.Seq, cause, err)
	}
	return s.bookFallback(e, rep, cause, plan, res), nil
}

// bookFallback charges a completed HV fallback execution — serial or a
// committed hedge shadow — into the report and the TTI breakdown.
func (s *System) bookFallback(e history.Entry, rep *QueryReport, cause error, plan *logical.Node, res *hv.Result) *QueryReport {
	rep.FellBackToHV = true
	rep.FallbackCause = cause
	rep.RecoverySeconds += res.Seconds + res.RecoverySeconds
	rep.Retries += res.Retries
	rep.NewViews += len(res.NewViews)
	rep.UsedViews = append(rep.UsedViews, s.markUsedViews(plan, e.Seq)...)
	rep.ResultRows = res.Table.NumRows()
	rep.Result = res.Table

	s.metrics.HVExe += rep.HVSeconds
	s.metrics.Transfer += rep.TransferSeconds
	s.metrics.DWExe += rep.DWSeconds
	s.addRecovery(rep.RecoverySeconds, rep.Retries)
	s.metrics.Fallbacks++
	return rep
}

// addRecovery accumulates recovery time and retry counts into the TTI
// breakdown.
func (s *System) addRecovery(sec float64, retries int) {
	s.metrics.Recovery += sec
	s.metrics.Retries += retries
}

// runMSLru is the passive tuner of the paper's Figure 7: only the working
// sets transferred between the stores during query execution are retained,
// as DW-resident views under an LRU policy — an access-based cache with no
// benefit or interaction analysis. HV by-products are not retained (that
// would be HV-OP's mechanism, not passive transfer caching).
func (s *System) runMSLru(ctx context.Context, e history.Entry) (*QueryReport, error) {
	mp, err := s.opt.Choose(e.Plan, s.design())
	if err != nil {
		return nil, err
	}
	rep := &QueryReport{Seq: e.Seq, SQL: e.SQL}
	if mp.HVOnly {
		res, err := s.hv.ExecuteContext(ctx, mp.HVPlan, e.Seq)
		if err != nil {
			if isAbortErr(err) {
				return nil, s.abandon(err, rep, e.Seq)
			}
			return nil, fmt.Errorf("multistore: query %d in HV: %w", e.Seq, err)
		}
		rep.HVSeconds = res.Seconds
		rep.RecoverySeconds = res.RecoverySeconds
		rep.Retries = res.Retries
		rep.HVOps = countOps(mp.HVPlan)
		rep.HVOnly = true
		rep.NewViews = len(res.NewViews)
		rep.ResultRows = res.Table.NumRows()
		rep.Result = res.Table
		rep.UsedViews = s.markUsedViews(mp.HVPlan, e.Seq)
		s.metrics.HVExe += res.Seconds
		s.addRecovery(res.RecoverySeconds, res.Retries)
		s.hv.Views.Reset()
		return rep, nil
	}
	bypassed := true
	for _, cut := range mp.Cuts {
		if cut.DWView != nil {
			continue
		}
		bypassed = false
		res, err := s.hv.ExecuteContext(ctx, cut.HVPlan, e.Seq)
		if err != nil {
			if isAbortErr(err) {
				return nil, s.abandon(err, rep, e.Seq)
			}
			return nil, fmt.Errorf("multistore: query %d in HV: %w", e.Seq, err)
		}
		rep.HVSeconds += res.Seconds
		rep.RecoverySeconds += res.RecoverySeconds
		rep.Retries += res.Retries
		rep.HVOps += countOps(cut.HVPlan)
		rep.NewViews += len(res.NewViews)
		rep.UsedViews = append(rep.UsedViews, s.markUsedViews(cut.HVPlan, e.Seq)...)
		if ctx.Err() != nil {
			return nil, s.abandon(ctx.Err(), rep, e.Seq)
		}
		bytes := res.Table.LogicalBytes()
		sum := storage.ChecksumTable(res.Table)
		if err := s.journal(&durability.Record{
			Kind: durability.KindTransferBegin, Name: cut.TempName,
			Seq: int64(e.Seq), Bytes: bytes, Checksum: sum,
		}); err != nil {
			return nil, err
		}
		if failed, _ := s.inj.Check(faults.SiteCrashTransfer); failed {
			return nil, fmt.Errorf("multistore: query %d transfer: %w", e.Seq, faults.Crash(faults.SiteCrashTransfer))
		}
		mv, mvErr := transfer.MoveContext(ctx, s.cfg.Transfer, bytes, transfer.KindWorkingSet, s.inj, s.retry, s.qbud)
		rep.Retries += mv.Retries
		if mvErr != nil {
			rep.RecoverySeconds += mv.WastedSeconds()
			if err := s.journal(&durability.Record{
				Kind: durability.KindTransferAbort, Name: cut.TempName, Seq: int64(e.Seq),
			}); err != nil {
				return nil, err
			}
			rep, err := s.fallbackHV(ctx, e, rep, mvErr)
			if err != nil {
				return nil, err
			}
			views.EvictLRU(s.dw.Views, s.cfg.Tuner.Bd)
			s.hv.Views.Reset()
			return rep, nil
		}
		if failed, _ := s.inj.Check(faults.SiteViewCorrupt); failed {
			// The staged working set failed its load-time checksum: the
			// move is wasted, and the damaged bytes must not be retained
			// as a cached DW view either.
			rep.RecoverySeconds += mv.Breakdown.Total() + mv.RecoverySeconds
			if err := s.journal(&durability.Record{
				Kind: durability.KindTransferAbort, Name: cut.TempName, Seq: int64(e.Seq),
			}); err != nil {
				return nil, err
			}
			rep, err := s.fallbackHV(ctx, e, rep, faults.Corrupt(cut.TempName))
			if err != nil {
				return nil, err
			}
			views.EvictLRU(s.dw.Views, s.cfg.Tuner.Bd)
			s.hv.Views.Reset()
			return rep, nil
		}
		rep.RecoverySeconds += mv.RecoverySeconds
		rep.TransferBytes += bytes
		rep.TransferSeconds += mv.Breakdown.Total()
		s.dw.StageTemp(cut.TempName, res.Table)
		if err := s.journal(&durability.Record{
			Kind: durability.KindTransferCommit, Name: cut.TempName, Seq: int64(e.Seq),
		}); err != nil {
			return nil, err
		}

		// Passive retention: the transferred working set becomes a DW
		// view keyed by its base-data definition.
		def := s.hv.ExpandViews(cut.Node)
		if def != nil {
			v := views.New(def, res.Table, e.Seq)
			v.StampGenerations(func(name string) (int, bool) {
				log, err := s.cat.Log(name)
				if err != nil {
					return 0, false
				}
				return log.Generation, true
			})
			// A quarantine-tombstoned name must not resurrect through
			// passive retention any more than through capture.
			if !s.dw.Views.Has(v.Name) && !s.tombstoned(v.Name) {
				s.dw.Views.Add(v)
			}
		}
	}
	rep.BypassedHV = bypassed
	if ctx.Err() != nil {
		return nil, s.abandon(ctx.Err(), rep, e.Seq)
	}
	dwRes, err := s.dw.ExecuteContext(ctx, mp.DWPart)
	if err != nil {
		if isAbortErr(err) {
			return nil, s.abandon(err, rep, e.Seq)
		}
		return nil, fmt.Errorf("multistore: query %d in DW: %w", e.Seq, err)
	}
	if err := s.simulateDWQuery(ctx, dwRes.Seconds, rep); err != nil {
		rep, err := s.fallbackHV(ctx, e, rep, err)
		if err != nil {
			return nil, err
		}
		views.EvictLRU(s.dw.Views, s.cfg.Tuner.Bd)
		s.hv.Views.Reset()
		return rep, nil
	}
	rep.DWSeconds = dwRes.Seconds
	rep.DWOps = countOps(mp.DWPart)
	rep.ResultRows = dwRes.Table.NumRows()
	rep.Result = dwRes.Table
	rep.UsedViews = append(rep.UsedViews, s.markUsedViews(mp.DWPart, e.Seq)...)
	s.dw.ClearTemp()

	views.EvictLRU(s.dw.Views, s.cfg.Tuner.Bd)
	s.hv.Views.Reset()
	s.metrics.HVExe += rep.HVSeconds
	s.metrics.Transfer += rep.TransferSeconds
	s.metrics.DWExe += rep.DWSeconds
	s.addRecovery(rep.RecoverySeconds, rep.Retries)
	return rep, nil
}

// reorg runs the MISO tuner over the window and applies the view
// movements one at a time, charging their time to TUNE. Each move runs
// through the fault-injected transfer pipeline and commits atomically: a
// move that aborts (or whose catalog commit fails) is rolled back — the
// view stays in its source store when it still fits there, its Bt
// consumption is refunded, and Vh ∩ Vd = ∅ holds no matter which moves
// fail. Time lost to failed moves is charged to RECOVERY, not TUNE.
func (s *System) reorg(w *history.Window) error {
	// Invalidate the reuse cache before tuning: the phase is about to
	// rearrange the physical design, and the tuner's what-if costing must
	// probe an empty cache to stay deterministic.
	s.invalidateReuse()
	if err := s.journal(&durability.Record{Kind: durability.KindReorgBegin, Seq: int64(s.seq)}); err != nil {
		return err
	}
	tuner := core.NewTuner(s.cfg.Tuner, s.opt)
	r, err := tuner.Tune(s.design(), w)
	if err != nil {
		return fmt.Errorf("multistore: tuning: %w", err)
	}
	rec := ReorgRecord{BeforeSeq: s.seq, Dropped: len(r.DropHV)}
	bud := transfer.NewBudget(s.cfg.Tuner.Bt)
	// Each reorganization gets its own retry budget, sized like a query's:
	// the phase degrades (moves roll back) instead of amplifying a fault
	// storm, but one storm-hit reorg cannot starve later ones.
	rbud := faults.NewBudget(s.cfg.RetryBudget)

	// rollBack undoes one failed move: v stays in its source set (or is
	// dropped when the source has no room left) and its budget returns.
	rollBack := func(v *views.View, from *views.Set, limit int64, wasted float64) {
		bud.Refund(v.SizeBytes())
		rec.FailedMoves++
		rec.RefundedBytes += v.SizeBytes()
		rec.RecoverySeconds += wasted
		if from.TotalBytes()+v.SizeBytes() <= limit {
			from.Add(v)
		} else {
			rec.Dropped++
		}
	}

	apply := func(v *views.View, kind transfer.Kind, dst, src *views.Set, srcLimit int64) {
		size := v.SizeBytes()
		if err := bud.Spend(size); err != nil {
			// The tuner packs moves within Bt; treat any slack violation
			// as a skipped move rather than a failed reorganization.
			dst.Remove(v.Name)
			rollBack(v, src, srcLimit, 0)
			return
		}
		mv, mvErr := transfer.MoveContext(context.Background(), s.cfg.Transfer, size, kind, s.inj, s.retry, rbud)
		committed := mvErr == nil
		wasted := mv.WastedSeconds()
		if committed {
			// The catalog commit itself can fail: the fully transferred
			// view is discarded at the destination, atomically.
			if failed, _ := s.inj.Check(faults.SiteReorgMove); failed {
				committed = false
				wasted = mv.Breakdown.Total() + mv.RecoverySeconds
				mv.Retries++
			}
		}
		s.metrics.Retries += mv.Retries
		if !committed {
			dst.Remove(v.Name)
			rollBack(v, src, srcLimit, wasted)
			return
		}
		rec.RecoverySeconds += mv.RecoverySeconds
		rec.Seconds += mv.Breakdown.Total()
		rec.Bytes += size
		if kind == transfer.KindToHV {
			rec.MovedToHV++
		} else {
			rec.MovedToDW++
		}
	}

	for _, v := range r.MoveToDW {
		apply(v, transfer.KindPermanent, r.NewDW, r.NewHV, s.cfg.Tuner.Bh)
	}
	for _, v := range r.MoveToHV {
		apply(v, transfer.KindToHV, r.NewHV, r.NewDW, s.cfg.Tuner.Bd)
	}

	// Crash site: the moves above mutated only the candidate sets; dying
	// here leaves an open reorg window in the WAL (begin, no commit) and
	// the live design untouched, so recovery rolls the whole phase back.
	if failed, _ := s.inj.Check(faults.SiteCrashReorg); failed {
		return fmt.Errorf("multistore: reorg before query %d: %w", s.seq, faults.Crash(faults.SiteCrashReorg))
	}

	s.metrics.Tune += rec.Seconds
	s.metrics.Recovery += rec.RecoverySeconds
	s.hv.Views.ReplaceAll(r.NewHV)
	s.dw.Views.ReplaceAll(r.NewDW)
	// The tuner rebuilt the design from the surviving views, so quarantine
	// tombstones have served their purpose: any future materialization of
	// a tombstoned name is a legitimately fresh recomputation.
	s.tomb = nil
	s.metrics.Reorgs++
	s.reorgLog = append(s.reorgLog, rec)

	// Commit the reorg transaction: the design diff lands inside the
	// begin..commit window, so recovery applies it atomically — all of it
	// when the commit record is durable, none of it otherwise.
	if s.dur != nil {
		if err := s.journalDesignDiff(); err != nil {
			return err
		}
		if err := s.journal(&durability.Record{
			Kind:            durability.KindReorgCommit,
			Seq:             int64(rec.BeforeSeq),
			Bytes:           rec.Bytes,
			MovedToDW:       int64(rec.MovedToDW),
			MovedToHV:       int64(rec.MovedToHV),
			Dropped:         int64(rec.Dropped),
			FailedMoves:     int64(rec.FailedMoves),
			RefundedBytes:   rec.RefundedBytes,
			Seconds:         rec.Seconds,
			RecoverySeconds: rec.RecoverySeconds,
		}); err != nil {
			return err
		}
	}
	return nil
}

// journal appends one record to the WAL when durability is enabled.
func (s *System) journal(rec *durability.Record) error {
	if s.dur == nil {
		return nil
	}
	return s.dur.WAL().Append(rec)
}

// offlineTune (MS-OFF) models what a current offline design tool can do:
// analyze the whole workload up-front (a dry run whose data is discarded)
// and fix one target design. Views still only come into existence as
// by-products of real query execution; realizing a chosen DW placement is
// charged to TUNE when the view first appears.
func (s *System) offlineTune() error {
	if len(s.future) == 0 {
		return fmt.Errorf("multistore: MS-OFF requires ProvideFutureWorkload")
	}
	for _, e := range s.future {
		if _, err := s.hv.Execute(e.Plan, e.Seq); err != nil {
			return fmt.Errorf("multistore: offline analysis of query %d: %w", e.Seq, err)
		}
	}
	w := history.NewWindow(len(s.future), len(s.future), 1.0)
	for _, e := range s.future {
		w.Add(e)
	}
	tuner := core.NewTuner(s.cfg.Tuner, s.opt)
	r, err := tuner.Tune(s.design(), w)
	if err != nil {
		return err
	}
	s.offTargetHV = map[string]bool{}
	s.offTargetDW = map[string]bool{}
	for _, v := range r.NewHV.All() {
		s.offTargetHV[v.Name] = true
	}
	for _, v := range r.NewDW.All() {
		s.offTargetDW[v.Name] = true
	}
	// The dry run's materializations are analysis artifacts, not free
	// physical design: discard them.
	s.hv.Views.Reset()
	s.dw.Views.Reset()
	return nil
}

// trimHVToDesign enforces the fixed offline design after each query: new
// by-products that the design chose for DW are transferred (charged to
// TUNE and logged as a movement before the next query), ones chosen for HV
// are kept, everything else is dropped.
func (s *System) trimHVToDesign() {
	rec := ReorgRecord{BeforeSeq: s.seq + 1}
	rbud := faults.NewBudget(s.cfg.RetryBudget)
	for _, v := range s.hv.Views.All() {
		switch {
		case s.offTargetDW[v.Name]:
			if !s.dw.Views.Has(v.Name) {
				mv, mvErr := transfer.MoveContext(context.Background(), s.cfg.Transfer, v.SizeBytes(), transfer.KindPermanent, s.inj, s.retry, rbud)
				s.metrics.Retries += mv.Retries
				if mvErr != nil {
					// Rolled back: the view stays in HV and the design
					// realization retries after a later query.
					rec.FailedMoves++
					rec.RecoverySeconds += mv.WastedSeconds()
					continue
				}
				rec.RecoverySeconds += mv.RecoverySeconds
				rec.Seconds += mv.Breakdown.Total()
				rec.Bytes += v.SizeBytes()
				rec.MovedToDW++
				s.dw.Views.Add(v)
			}
			s.hv.Views.Remove(v.Name)
		case s.offTargetHV[v.Name]:
			// Keep.
		default:
			s.hv.Views.Remove(v.Name)
			rec.Dropped++
		}
	}
	views.EvictLRU(s.hv.Views, s.cfg.Tuner.Bh)
	if rec.MovedToDW > 0 || rec.FailedMoves > 0 {
		s.metrics.Tune += rec.Seconds
		s.metrics.Recovery += rec.RecoverySeconds
		s.reorgLog = append(s.reorgLog, rec)
	}
}

// markUsedViews bumps LastUsedSeq on every view the plan reads and returns
// their names.
func (s *System) markUsedViews(plan *logical.Node, seq int) []string {
	var used []string
	plan.Walk(func(n *logical.Node) {
		if n.Kind != logical.KindViewScan {
			return
		}
		if v, ok := s.hv.Views.Get(n.ViewName); ok {
			v.LastUsedSeq = seq
			used = append(used, n.ViewName)
			return
		}
		if v, ok := s.dw.Views.Get(n.ViewName); ok {
			v.LastUsedSeq = seq
			used = append(used, n.ViewName)
		}
	})
	return used
}

// countOps counts executable operators in a plan (Scan leaves excluded).
func countOps(plan *logical.Node) int {
	n := 0
	plan.Walk(func(m *logical.Node) {
		if m.Kind != logical.KindScan {
			n++
		}
	})
	return n
}

// hasRawScan reports whether the plan still reads raw logs.
func hasRawScan(plan *logical.Node) bool {
	found := false
	plan.Walk(func(n *logical.Node) {
		if n.Kind == logical.KindScan || n.Kind == logical.KindExtract {
			found = true
		}
	})
	return found
}

package multistore

import (
	"fmt"

	"miso/internal/core"
	"miso/internal/history"
	"miso/internal/logical"
	"miso/internal/optimizer"
	"miso/internal/transfer"
	"miso/internal/views"
)

func freshSet() *views.Set { return views.NewSet() }

// runHVOnly executes the whole query in HV with no views.
func (s *System) runHVOnly(e history.Entry) (*QueryReport, error) {
	res, err := s.hv.Execute(e.Plan, e.Seq)
	if err != nil {
		return nil, err
	}
	s.metrics.HVExe += res.Seconds
	return &QueryReport{
		Seq: e.Seq, SQL: e.SQL,
		HVSeconds:  res.Seconds,
		HVOps:      countOps(e.Plan),
		HVOnly:     true,
		NewViews:   len(res.NewViews),
		ResultRows: res.Table.NumRows(),
		Result:     res.Table,
	}, nil
}

// runHVOp executes in HV, reusing and retaining opportunistic views under
// an LRU policy within the HV storage budget.
func (s *System) runHVOp(e history.Entry) (*QueryReport, error) {
	plan := optimizer.RewriteWithViews(e.Plan, s.hv.Views)
	res, err := s.hv.Execute(plan, e.Seq)
	if err != nil {
		return nil, err
	}
	used := s.markUsedViews(plan, e.Seq)
	views.EvictLRU(s.hv.Views, s.cfg.Tuner.Bh)
	s.metrics.HVExe += res.Seconds
	return &QueryReport{
		Seq: e.Seq, SQL: e.SQL,
		HVSeconds:  res.Seconds,
		HVOps:      countOps(plan),
		HVOnly:     true,
		UsedViews:  used,
		NewViews:   len(res.NewViews),
		ResultRows: res.Table.NumRows(),
		Result:     res.Table,
	}, nil
}

// runDWOnly serves the query entirely from DW after the one-time ETL.
func (s *System) runDWOnly(e history.Entry) (*QueryReport, error) {
	if !s.etlDone {
		if err := s.runETL(); err != nil {
			return nil, err
		}
		s.etlDone = true
	}
	plan := optimizer.RewriteWithViews(e.Plan, s.dw.Views)
	if hasRawScan(plan) {
		return nil, fmt.Errorf("multistore: DW-ONLY query %d not covered by the ETL'd data", e.Seq)
	}
	res, err := s.dw.Execute(plan)
	if err != nil {
		return nil, err
	}
	used := s.markUsedViews(plan, e.Seq)
	s.metrics.DWExe += res.Seconds
	return &QueryReport{
		Seq: e.Seq, SQL: e.SQL,
		DWSeconds:  res.Seconds,
		DWOps:      countOps(plan),
		BypassedHV: true,
		UsedViews:  used,
		ResultRows: res.Table.NumRows(),
		Result:     res.Table,
	}, nil
}

// runMultistore executes the optimizer's chosen split plan. Migrated
// working sets live in DW temp space for the duration of the query only;
// HV by-products accumulate in the store and callers that do not retain
// them (MS-BASIC, MS-OFF) reset or trim the HV view set afterwards.
func (s *System) runMultistore(e history.Entry, d optimizer.Design) (*QueryReport, error) {
	mp, err := s.opt.Choose(e.Plan, d)
	if err != nil {
		return nil, err
	}
	rep := &QueryReport{Seq: e.Seq, SQL: e.SQL}
	if mp.HVOnly {
		res, err := s.hv.Execute(mp.HVPlan, e.Seq)
		if err != nil {
			return nil, err
		}
		rep.HVSeconds = res.Seconds
		rep.HVOps = countOps(mp.HVPlan)
		rep.HVOnly = true
		rep.NewViews = len(res.NewViews)
		rep.ResultRows = res.Table.NumRows()
		rep.Result = res.Table
		rep.UsedViews = s.markUsedViews(mp.HVPlan, e.Seq)
		s.metrics.HVExe += res.Seconds
		return rep, nil
	}

	bypassed := true
	for _, cut := range mp.Cuts {
		if cut.DWView != nil {
			continue // answered directly from a DW-resident view
		}
		bypassed = false
		res, err := s.hv.Execute(cut.HVPlan, e.Seq)
		if err != nil {
			return nil, err
		}
		rep.HVSeconds += res.Seconds
		rep.HVOps += countOps(cut.HVPlan)
		rep.NewViews += len(res.NewViews)
		rep.UsedViews = append(rep.UsedViews, s.markUsedViews(cut.HVPlan, e.Seq)...)

		bytes := res.Table.LogicalBytes()
		rep.TransferBytes += bytes
		rep.TransferSeconds += transfer.Cost(s.cfg.Transfer, bytes).Total()
		s.dw.StageTemp(cut.TempName, res.Table)
	}
	rep.BypassedHV = bypassed

	dwRes, err := s.dw.Execute(mp.DWPart)
	if err != nil {
		return nil, err
	}
	rep.DWSeconds = dwRes.Seconds
	rep.DWOps = countOps(mp.DWPart)
	rep.ResultRows = dwRes.Table.NumRows()
	rep.Result = dwRes.Table
	rep.UsedViews = append(rep.UsedViews, s.markUsedViews(mp.DWPart, e.Seq)...)
	s.dw.ClearTemp()

	s.metrics.HVExe += rep.HVSeconds
	s.metrics.Transfer += rep.TransferSeconds
	s.metrics.DWExe += rep.DWSeconds
	return rep, nil
}

// runMSLru is the passive tuner of the paper's Figure 7: only the working
// sets transferred between the stores during query execution are retained,
// as DW-resident views under an LRU policy — an access-based cache with no
// benefit or interaction analysis. HV by-products are not retained (that
// would be HV-OP's mechanism, not passive transfer caching).
func (s *System) runMSLru(e history.Entry) (*QueryReport, error) {
	mp, err := s.opt.Choose(e.Plan, s.Design())
	if err != nil {
		return nil, err
	}
	rep := &QueryReport{Seq: e.Seq, SQL: e.SQL}
	if mp.HVOnly {
		res, err := s.hv.Execute(mp.HVPlan, e.Seq)
		if err != nil {
			return nil, err
		}
		rep.HVSeconds = res.Seconds
		rep.HVOps = countOps(mp.HVPlan)
		rep.HVOnly = true
		rep.NewViews = len(res.NewViews)
		rep.ResultRows = res.Table.NumRows()
		rep.Result = res.Table
		rep.UsedViews = s.markUsedViews(mp.HVPlan, e.Seq)
		s.metrics.HVExe += res.Seconds
		s.hv.Views = freshSet()
		return rep, nil
	}
	bypassed := true
	for _, cut := range mp.Cuts {
		if cut.DWView != nil {
			continue
		}
		bypassed = false
		res, err := s.hv.Execute(cut.HVPlan, e.Seq)
		if err != nil {
			return nil, err
		}
		rep.HVSeconds += res.Seconds
		rep.HVOps += countOps(cut.HVPlan)
		rep.NewViews += len(res.NewViews)
		rep.UsedViews = append(rep.UsedViews, s.markUsedViews(cut.HVPlan, e.Seq)...)
		bytes := res.Table.LogicalBytes()
		rep.TransferBytes += bytes
		rep.TransferSeconds += transfer.Cost(s.cfg.Transfer, bytes).Total()
		s.dw.StageTemp(cut.TempName, res.Table)

		// Passive retention: the transferred working set becomes a DW
		// view keyed by its base-data definition.
		def := s.hv.ExpandViews(cut.Node)
		if def != nil {
			v := views.New(def, res.Table, e.Seq)
			if !s.dw.Views.Has(v.Name) {
				s.dw.Views.Add(v)
			}
		}
	}
	rep.BypassedHV = bypassed
	dwRes, err := s.dw.Execute(mp.DWPart)
	if err != nil {
		return nil, err
	}
	rep.DWSeconds = dwRes.Seconds
	rep.DWOps = countOps(mp.DWPart)
	rep.ResultRows = dwRes.Table.NumRows()
	rep.Result = dwRes.Table
	rep.UsedViews = append(rep.UsedViews, s.markUsedViews(mp.DWPart, e.Seq)...)
	s.dw.ClearTemp()

	views.EvictLRU(s.dw.Views, s.cfg.Tuner.Bd)
	s.hv.Views = freshSet()
	s.metrics.HVExe += rep.HVSeconds
	s.metrics.Transfer += rep.TransferSeconds
	s.metrics.DWExe += rep.DWSeconds
	return rep, nil
}

// reorg runs the MISO tuner over the window and applies the view
// movements, charging their time to TUNE.
func (s *System) reorg(w *history.Window) error {
	tuner := core.NewTuner(s.cfg.Tuner, s.opt)
	r, err := tuner.Tune(s.Design(), w)
	if err != nil {
		return err
	}
	rec := ReorgRecord{
		BeforeSeq: s.seq,
		MovedToDW: len(r.MoveToDW),
		MovedToHV: len(r.MoveToHV),
		Dropped:   len(r.DropHV),
		Bytes:     r.TransferBytes,
	}
	for _, v := range r.MoveToDW {
		rec.Seconds += transfer.Cost(s.cfg.Transfer, v.SizeBytes()).Total()
	}
	for _, v := range r.MoveToHV {
		rec.Seconds += transfer.CostToHV(s.cfg.Transfer, v.SizeBytes()).Total()
	}
	s.metrics.Tune += rec.Seconds
	s.hv.Views = r.NewHV
	s.dw.Views = r.NewDW
	s.metrics.Reorgs++
	s.reorgLog = append(s.reorgLog, rec)
	return nil
}

// offlineTune (MS-OFF) models what a current offline design tool can do:
// analyze the whole workload up-front (a dry run whose data is discarded)
// and fix one target design. Views still only come into existence as
// by-products of real query execution; realizing a chosen DW placement is
// charged to TUNE when the view first appears.
func (s *System) offlineTune() error {
	if len(s.future) == 0 {
		return fmt.Errorf("multistore: MS-OFF requires ProvideFutureWorkload")
	}
	for _, e := range s.future {
		if _, err := s.hv.Execute(e.Plan, e.Seq); err != nil {
			return fmt.Errorf("multistore: offline analysis of query %d: %w", e.Seq, err)
		}
	}
	w := history.NewWindow(len(s.future), len(s.future), 1.0)
	for _, e := range s.future {
		w.Add(e)
	}
	tuner := core.NewTuner(s.cfg.Tuner, s.opt)
	r, err := tuner.Tune(s.Design(), w)
	if err != nil {
		return err
	}
	s.offTargetHV = map[string]bool{}
	s.offTargetDW = map[string]bool{}
	for _, v := range r.NewHV.All() {
		s.offTargetHV[v.Name] = true
	}
	for _, v := range r.NewDW.All() {
		s.offTargetDW[v.Name] = true
	}
	// The dry run's materializations are analysis artifacts, not free
	// physical design: discard them.
	s.hv.Views = freshSet()
	s.dw.Views = freshSet()
	return nil
}

// trimHVToDesign enforces the fixed offline design after each query: new
// by-products that the design chose for DW are transferred (charged to
// TUNE and logged as a movement before the next query), ones chosen for HV
// are kept, everything else is dropped.
func (s *System) trimHVToDesign() {
	rec := ReorgRecord{BeforeSeq: s.seq + 1}
	for _, v := range s.hv.Views.All() {
		switch {
		case s.offTargetDW[v.Name]:
			if !s.dw.Views.Has(v.Name) {
				rec.Seconds += transfer.Cost(s.cfg.Transfer, v.SizeBytes()).Total()
				rec.Bytes += v.SizeBytes()
				rec.MovedToDW++
				s.dw.Views.Add(v)
			}
			s.hv.Views.Remove(v.Name)
		case s.offTargetHV[v.Name]:
			// Keep.
		default:
			s.hv.Views.Remove(v.Name)
			rec.Dropped++
		}
	}
	views.EvictLRU(s.hv.Views, s.cfg.Tuner.Bh)
	if rec.MovedToDW > 0 {
		s.metrics.Tune += rec.Seconds
		s.reorgLog = append(s.reorgLog, rec)
	}
}

// markUsedViews bumps LastUsedSeq on every view the plan reads and returns
// their names.
func (s *System) markUsedViews(plan *logical.Node, seq int) []string {
	var used []string
	plan.Walk(func(n *logical.Node) {
		if n.Kind != logical.KindViewScan {
			return
		}
		if v, ok := s.hv.Views.Get(n.ViewName); ok {
			v.LastUsedSeq = seq
			used = append(used, n.ViewName)
			return
		}
		if v, ok := s.dw.Views.Get(n.ViewName); ok {
			v.LastUsedSeq = seq
			used = append(used, n.ViewName)
		}
	})
	return used
}

// countOps counts executable operators in a plan (Scan leaves excluded).
func countOps(plan *logical.Node) int {
	n := 0
	plan.Walk(func(m *logical.Node) {
		if m.Kind != logical.KindScan {
			n++
		}
	})
	return n
}

// hasRawScan reports whether the plan still reads raw logs.
func hasRawScan(plan *logical.Node) bool {
	found := false
	plan.Walk(func(n *logical.Node) {
		if n.Kind == logical.KindScan || n.Kind == logical.KindExtract {
			found = true
		}
	})
	return found
}

package multistore

// White-box tests for the cross-query reuse plane: semantic-cache hits
// serving digest-identical answers, strict invalidation on every trigger
// (log appends, generation bumps, reorganization, crash recovery, audit
// quarantine), deterministic single-flight piggybacking, and the
// guarantee that reuse-enabled execution never changes what a query
// answers. They reach into the plane's registry and version mirror, so
// they live inside the package.

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"miso/internal/data"
	"miso/internal/storage"
	"miso/internal/workload"
)

func newReuseSystem(t *testing.T, v Variant, mutate func(*Config)) *System {
	t.Helper()
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	cfg := DefaultConfig(v)
	cfg.SetBudgets(cat, 2.0, 10<<30)
	cfg.Reuse.Enabled = true
	if mutate != nil {
		mutate(&cfg)
	}
	sys := New(cfg, cat)
	if err := sys.ProvideFutureWorkload(workload.SQLs()); err != nil {
		t.Fatalf("future workload: %v", err)
	}
	return sys
}

func reuseTweetLine(t *testing.T, id int64) string {
	t.Helper()
	b, err := json.Marshal(map[string]any{
		"tweet_id": id, "user_id": int64(1), "ts": int64(1357000000),
		"text": "amazing burger #food", "hashtag": "food", "lang": "en",
		"retweets": int64(300), "followers": int64(5000),
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestReuseCacheHitIdenticalToColdExecution runs the workload twice on a
// reuse-enabled system: every second-pass query must be a cache hit whose
// answer (schema + rows, via ChecksumData — result-table names embed the
// physical plan, which legitimately evolves with view capture) is
// identical to what a reuse-disabled system computes cold. Reorgs are
// disabled so the cache survives the full double pass.
func TestReuseCacheHitIdenticalToColdExecution(t *testing.T) {
	catOff, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfgOff := DefaultConfig(VariantMSMiso)
	cfgOff.SetBudgets(catOff, 2.0, 10<<30)
	cfgOff.ReorgEvery = 0
	off := New(cfgOff, catOff)
	if err := off.ProvideFutureWorkload(workload.SQLs()); err != nil {
		t.Fatal(err)
	}
	on := newReuseSystem(t, VariantMSMiso, func(c *Config) { c.ReorgEvery = 0 })

	sqls := workload.SQLs()
	coldSums := make([]uint64, len(sqls))
	for i, sql := range sqls {
		rep, err := off.Run(sql)
		if err != nil {
			t.Fatalf("off query %d: %v", i, err)
		}
		coldSums[i] = storage.ChecksumData(rep.Result)
	}
	for i, sql := range sqls {
		rep, err := on.Run(sql)
		if err != nil {
			t.Fatalf("on query %d: %v", i, err)
		}
		if got := storage.ChecksumData(rep.Result); got != coldSums[i] {
			t.Fatalf("query %d: reuse-enabled first pass diverged from cold execution", i)
		}
	}
	for i, sql := range sqls {
		rep, err := on.Run(sql)
		if err != nil {
			t.Fatalf("repeat query %d: %v", i, err)
		}
		if !rep.CacheHit {
			t.Errorf("repeat query %d executed cold, want cache hit", i)
		}
		if rep.Total() != 0 {
			t.Errorf("repeat query %d charged %f simulated seconds, want 0", i, rep.Total())
		}
		if got := storage.ChecksumData(rep.Result); got != coldSums[i] {
			t.Fatalf("repeat query %d: cached answer diverged from cold execution", i)
		}
	}
	m := on.Metrics()
	if m.CacheHits != len(sqls) {
		t.Errorf("CacheHits = %d, want %d", m.CacheHits, len(sqls))
	}
	if m.Queries != 2*len(sqls) {
		t.Errorf("Queries = %d, want %d", m.Queries, 2*len(sqls))
	}
	if err := on.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestReuseInvalidationOnAppend: an append within a generation changes
// the log's content version, so a warm cache must neither serve the old
// answer nor be consulted under the old fingerprint.
func TestReuseInvalidationOnAppend(t *testing.T) {
	sys := newReuseSystem(t, VariantMSMiso, nil)
	count := `SELECT COUNT(*) AS n FROM tweets WHERE hashtag = 'food' AND retweets > 250`
	before, err := sys.Run(count)
	if err != nil {
		t.Fatal(err)
	}
	if rep, err := sys.Run(count); err != nil || !rep.CacheHit {
		t.Fatalf("warmup repeat: err=%v hit=%v", err, rep.CacheHit)
	}
	if _, err := sys.AppendToLog(data.TweetsLog, []string{
		reuseTweetLine(t, 2_000_001), reuseTweetLine(t, 2_000_002),
	}); err != nil {
		t.Fatal(err)
	}
	if st := sys.ReuseStats().Cache; st.Entries != 0 || st.Invalidations == 0 {
		t.Fatalf("append did not clear the cache: %+v", st)
	}
	after, err := sys.Run(count)
	if err != nil {
		t.Fatal(err)
	}
	if after.CacheHit {
		t.Fatal("post-append query served from cache")
	}
	if after.Result.Rows[0][0].I != before.Result.Rows[0][0].I+2 {
		t.Errorf("count %d -> %d, want +2", before.Result.Rows[0][0].I, after.Result.Rows[0][0].I)
	}
	// The fresh answer re-caches under the new content version.
	if rep, err := sys.Run(count); err != nil || !rep.CacheHit {
		t.Fatalf("post-append repeat: err=%v hit=%v", err, rep.CacheHit)
	}
}

// TestReuseInvalidationOnGenerationBump: RefreshLog resets the log (a
// LogFile.Reset generation bump); the cache clears and the version
// mirror advances even when the refresh carries content equal in length.
func TestReuseInvalidationOnGenerationBump(t *testing.T) {
	sys := newReuseSystem(t, VariantMSMiso, nil)
	count := "SELECT COUNT(*) AS n FROM tweets"
	if _, err := sys.Run(count); err != nil {
		t.Fatal(err)
	}
	if rep, err := sys.Run(count); err != nil || !rep.CacheHit {
		t.Fatalf("warmup repeat: err=%v hit=%v", err, rep.CacheHit)
	}
	gen0, lines0, ok := sys.reuse.LogVersion(data.TweetsLog)
	if !ok {
		t.Fatal("version mirror missing tweets")
	}
	if _, err := sys.RefreshLog(data.TweetsLog, []string{
		reuseTweetLine(t, 1), reuseTweetLine(t, 2), reuseTweetLine(t, 3),
	}); err != nil {
		t.Fatal(err)
	}
	gen1, lines1, ok := sys.reuse.LogVersion(data.TweetsLog)
	if !ok || gen1 != gen0+1 {
		t.Fatalf("generation %d -> %d, want +1", gen0, gen1)
	}
	if lines0 == lines1 {
		t.Logf("line counts happen to match (%d); the generation alone must separate fingerprints", lines0)
	}
	if st := sys.ReuseStats().Cache; st.Entries != 0 {
		t.Fatalf("refresh did not clear the cache: %+v", st)
	}
	rep, err := sys.Run(count)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheHit {
		t.Fatal("post-refresh query served from cache")
	}
	if rep.Result.Rows[0][0].I != 3 {
		t.Errorf("refreshed count = %d, want 3", rep.Result.Rows[0][0].I)
	}
}

// TestReuseInvalidationOnReorganize: an explicit mid-soak reorganization
// clears the cache at phase start (the drain-barrier trigger), and
// queries re-cache afterward.
func TestReuseInvalidationOnReorganize(t *testing.T) {
	sys := newReuseSystem(t, VariantMSMiso, nil)
	sqls := workload.SQLs()
	for i := 0; i < 4; i++ {
		if _, err := sys.Run(sqls[i]); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if st := sys.ReuseStats().Cache; st.Entries == 0 {
		t.Fatal("nothing cached before reorg")
	}
	if err := sys.Reorganize(); err != nil {
		t.Fatalf("reorganize: %v", err)
	}
	if st := sys.ReuseStats().Cache; st.Entries != 0 || st.Invalidations == 0 {
		t.Fatalf("reorg did not clear the cache: %+v", st)
	}
	rep, err := sys.Run(sqls[0])
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheHit {
		t.Fatal("post-reorg query served from cache")
	}
	if rep2, err := sys.Run(sqls[0]); err != nil || !rep2.CacheHit {
		t.Fatalf("post-reorg repeat: err=%v hit=%v", err, rep2.CacheHit)
	}
}

// TestReuseInvalidationOnRecover: a crash + WAL replay builds a fresh
// System whose reuse plane starts empty — recovery never trusts cached
// materializations — and post-recovery answers match pre-crash ones.
func TestReuseInvalidationOnRecover(t *testing.T) {
	sys := newReuseSystem(t, VariantMSMiso, func(c *Config) {
		c.CheckpointEvery = 4
	})
	sqls := workload.SQLs()
	var want []uint64
	for i := 0; i < 6; i++ {
		rep, err := sys.Run(sqls[i])
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		want = append(want, storage.ChecksumData(rep.Result))
	}
	if sys.ReuseStats().Cache.Entries == 0 {
		t.Fatal("nothing cached before crash")
	}

	cfg := sys.cfg
	twin, _, err := Recover(cfg, sys.Catalog(), sys.Durability().Latest(), sys.Durability().WAL())
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if st := twin.ReuseStats().Cache; st.Entries != 0 || st.Hits != 0 {
		t.Fatalf("recovered system inherited cache state: %+v", st)
	}
	for i := 0; i < 6; i++ {
		rep, err := twin.Run(sqls[i])
		if err != nil {
			t.Fatalf("post-recovery query %d: %v", i, err)
		}
		if rep.CacheHit {
			t.Fatalf("post-recovery query %d served from a cache that should be empty", i)
		}
		if got := storage.ChecksumData(rep.Result); got != want[i] {
			t.Fatalf("post-recovery query %d diverged from pre-crash answer", i)
		}
	}
}

// TestReuseInvalidationOnAuditQuarantine: when the audit plane
// quarantines an unrepairable corrupt view, every cached entry is
// dropped — results computed while the view was live may carry its bytes.
func TestReuseInvalidationOnAuditQuarantine(t *testing.T) {
	sys := newReuseSystem(t, VariantMSMiso, nil)
	runPrefix(t, sys, 6)
	if sys.ReuseStats().Cache.Entries == 0 {
		t.Fatal("nothing cached before quarantine")
	}

	victim, _ := pickRecomputable(sys)
	if victim == nil {
		t.Fatal("no view materialized")
	}
	rotted := victim.Table.Clone()
	rotTable(rotted, 0.5)
	victim.Table = rotted
	// Break the name↔signature link (keeping the registered name, which
	// is the store's map key) so the repair path cannot recompute the
	// view: the audit must quarantine instead.
	victim.Sig = "scan(bogus)"

	viols, _, err := sys.AuditViews("", 0, true)
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	quarantined := false
	for _, v := range viols {
		if v.Quarantined {
			quarantined = true
		}
	}
	if !quarantined {
		t.Fatalf("audit did not quarantine: %+v", viols)
	}
	if st := sys.ReuseStats().Cache; st.Entries != 0 || st.Invalidations == 0 {
		t.Fatalf("quarantine did not clear the cache: %+v", st)
	}
}

// waitFollowers blocks until the flight registry has seen n follower
// joins (the counter is cumulative), failing the test after ~5s.
func waitFollowers(t *testing.T, sys *System, n int) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		if sys.reuse.flight.Stats().Followers >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("no follower joined the flight (stats %+v)", sys.reuse.flight.Stats())
}

// TestReusePiggyback deterministically exercises the single-flight path:
// with a leader call held open for a fingerprint, a concurrent identical
// query joins as follower and books the leader's published table as a
// zero-cost piggybacked report.
func TestReusePiggyback(t *testing.T) {
	sys := newReuseSystem(t, VariantMSMiso, nil)
	sql := workload.SQLs()[0]
	cold, err := sys.Run(sql)
	if err != nil {
		t.Fatal(err)
	}

	fp, ok := sys.fingerprintSQL(sql)
	if !ok {
		t.Fatal("workload query did not fingerprint")
	}
	call, leader := sys.reuse.flight.Join(fp)
	if !leader {
		t.Fatal("fingerprint unexpectedly in flight")
	}
	done := make(chan *QueryReport, 1)
	errs := make(chan error, 1)
	go func() {
		rep, err := sys.RunContext(context.Background(), sql)
		if err != nil {
			errs <- err
			return
		}
		done <- rep
	}()
	waitFollowers(t, sys, 1)
	sys.reuse.flight.Complete(fp, call, cold.Result, storage.ChecksumData(cold.Result), nil)
	select {
	case err := <-errs:
		t.Fatalf("follower: %v", err)
	case rep := <-done:
		if !rep.Piggybacked {
			t.Fatal("follower did not piggyback")
		}
		if rep.Total() != 0 {
			t.Errorf("piggybacked query charged %f seconds, want 0", rep.Total())
		}
		if storage.ChecksumTable(rep.Result) != storage.ChecksumTable(cold.Result) {
			t.Fatal("piggybacked answer diverged from the leader's")
		}
	}
	if m := sys.Metrics(); m.Piggybacked != 1 {
		t.Errorf("Piggybacked = %d, want 1", m.Piggybacked)
	}
	// A failed leader must push followers onto cold execution, never
	// sharing the failure.
	call2, leader2 := sys.reuse.flight.Join(fp)
	if !leader2 {
		t.Fatal("fingerprint still in flight")
	}
	done2 := make(chan *QueryReport, 1)
	go func() {
		rep, err := sys.RunContext(context.Background(), sql)
		if err != nil {
			errs <- err
			return
		}
		done2 <- rep
	}()
	waitFollowers(t, sys, 2)
	sys.reuse.flight.Complete(fp, call2, nil, 0, errLeaderFailed)
	select {
	case err := <-errs:
		t.Fatalf("fallback follower: %v", err)
	case rep := <-done2:
		if rep.Piggybacked {
			t.Fatal("follower shared a failed leader's flight")
		}
		if storage.ChecksumTable(rep.Result) != storage.ChecksumTable(cold.Result) {
			t.Fatal("fallback answer diverged")
		}
	}
}

// TestReuseDisabledIsByteIdentical: with Config.Reuse zero the plane is
// never constructed, and a full workload run produces the same
// StateDigest as a twin system — the structural guarantee that disabled
// reuse changes nothing.
func TestReuseDisabledIsByteIdentical(t *testing.T) {
	run := func() uint64 {
		cat, err := data.Generate(data.SmallConfig())
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(VariantMSMiso)
		cfg.SetBudgets(cat, 2.0, 10<<30)
		sys := New(cfg, cat)
		if err := sys.ProvideFutureWorkload(workload.SQLs()); err != nil {
			t.Fatal(err)
		}
		if sys.reuse != nil {
			t.Fatal("zero Reuse config built a reuse plane")
		}
		for i, sql := range workload.SQLs() {
			if _, err := sys.Run(sql); err != nil {
				t.Fatalf("query %d: %v", i, err)
			}
		}
		return sys.StateDigest()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("reuse-disabled runs diverged: %x vs %x", a, b)
	}
}

package multistore_test

import (
	"fmt"
	"math/rand"
	"testing"

	"miso/internal/multistore"
)

// genQueries produces structured random queries over the catalog that are
// guaranteed to parse and plan (invalid combinations are filtered by a dry
// build on the HV-ONLY system).
func genQueries(rng *rand.Rand, n int) []string {
	tables := []struct {
		name string
		cols []string
		text string
	}{
		{"tweets", []string{"tweet_id", "user_id", "ts", "hashtag", "lang", "retweets", "followers"}, "text"},
		{"checkins", []string{"checkin_id", "user_id", "ts", "venue_id", "category"}, ""},
		{"landmarks", []string{"venue_id", "name", "city", "category"}, ""},
	}
	joinKey := map[[2]string]string{
		{"tweets", "checkins"}:    "user_id",
		{"checkins", "landmarks"}: "venue_id",
	}
	var out []string
	for len(out) < n {
		ti := rng.Intn(len(tables))
		ta := tables[ti]
		var sql string
		col := ta.cols[rng.Intn(len(ta.cols))]
		switch rng.Intn(4) {
		case 0: // filtered projection
			sql = fmt.Sprintf("SELECT a.%s FROM %s a WHERE a.%s IS NOT NULL",
				col, ta.name, ta.cols[rng.Intn(len(ta.cols))])
		case 1: // grouped aggregate
			sql = fmt.Sprintf("SELECT a.%s, COUNT(*) AS n FROM %s a GROUP BY a.%s ORDER BY n DESC LIMIT %d",
				col, ta.name, col, 1+rng.Intn(20))
		case 2: // join when a key exists
			var tb string
			var key string
			for pair, k := range joinKey {
				if pair[0] == ta.name {
					tb, key = pair[1], k
				} else if pair[1] == ta.name {
					tb, key = pair[0], k
				}
			}
			if tb == "" {
				continue
			}
			sql = fmt.Sprintf("SELECT COUNT(*) AS n FROM %s a JOIN %s b ON a.%s = b.%s",
				ta.name, tb, key, key)
		default: // distinct
			sql = fmt.Sprintf("SELECT DISTINCT a.%s FROM %s a LIMIT %d",
				col, ta.name, 5+rng.Intn(30))
		}
		out = append(out, sql)
	}
	return out
}

// TestRandomQueryEquivalenceAcrossVariants is the strongest correctness
// property in the repository: for randomly generated queries, every system
// variant — with views, splits, and tuning engaged — must return exactly
// the rows the plain HV-ONLY execution returns.
func TestRandomQueryEquivalenceAcrossVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized equivalence is slow")
	}
	rng := rand.New(rand.NewSource(31))
	queries := genQueries(rng, 40)

	ref := newSystem(t, multistore.VariantHVOnly)
	miso := newSystem(t, multistore.VariantMSMiso)
	lru := newSystem(t, multistore.VariantMSLru)
	for i, sql := range queries {
		want, err := ref.Run(sql)
		if err != nil {
			t.Fatalf("query %d (%s): %v", i, sql, err)
		}
		for name, sys := range map[string]*multistore.System{"MS-MISO": miso, "MS-LRU": lru} {
			got, err := sys.Run(sql)
			if err != nil {
				t.Fatalf("%s query %d (%s): %v", name, i, sql, err)
			}
			if !sameResults(got.Result, want.Result) {
				t.Errorf("%s query %d (%s): results diverge (%d vs %d rows)",
					name, i, sql, got.ResultRows, want.ResultRows)
			}
		}
	}
}

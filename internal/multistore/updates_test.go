package multistore_test

import (
	"encoding/json"
	"testing"

	"miso/internal/data"
	"miso/internal/multistore"
	"miso/internal/workload"
)

func tweetLine(t *testing.T, id int64) string {
	t.Helper()
	b, err := json.Marshal(map[string]any{
		"tweet_id": id, "user_id": int64(1), "ts": int64(1357000000),
		"text": "amazing burger #food", "hashtag": "food", "lang": "en",
		"retweets": int64(300), "followers": int64(5000),
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestAppendToLogInvalidatesDerivedViews(t *testing.T) {
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := multistore.DefaultConfig(multistore.VariantMSMiso)
	cfg.SetBudgets(cat, 2.0, 10<<30)
	sys := multistore.New(cfg, cat)

	q1, _ := workload.ByName("A1v1") // touches tweets + checkins + landmarks
	q2, _ := workload.ByName("A2v1") // touches checkins + landmarks only
	rep1, err := sys.Run(q1.SQL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(q2.SQL); err != nil {
		t.Fatal(err)
	}
	if sys.HV().Views.Len() == 0 {
		t.Fatal("no views to invalidate")
	}

	total := sys.HV().Views.Len() + sys.DW().Views.Len()
	dropped, err := sys.AppendToLog(data.TweetsLog, []string{tweetLine(t, 1_000_001)})
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Error("appending to tweets invalidated nothing")
	}
	remaining := sys.HV().Views.Len() + sys.DW().Views.Len()
	if remaining != total-dropped {
		t.Errorf("views: %d before, %d dropped, %d remain", total, dropped, remaining)
	}
	// q2's checkins/landmarks views must survive a tweets append.
	if remaining == 0 {
		t.Error("append dropped views over unrelated logs")
	}

	// The query still runs correctly after invalidation.
	rep1b, err := sys.Run(q1.SQL)
	if err != nil {
		t.Fatal(err)
	}
	if rep1b.ResultRows < rep1.ResultRows {
		t.Errorf("post-append run lost rows: %d -> %d", rep1.ResultRows, rep1b.ResultRows)
	}
}

func TestAppendChangesQueryResults(t *testing.T) {
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := multistore.DefaultConfig(multistore.VariantMSMiso)
	cfg.SetBudgets(cat, 2.0, 10<<30)
	sys := multistore.New(cfg, cat)

	count := `SELECT COUNT(*) AS n FROM tweets WHERE hashtag = 'food' AND retweets > 250`
	before, err := sys.Run(count)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AppendToLog(data.TweetsLog, []string{
		tweetLine(t, 2_000_001), tweetLine(t, 2_000_002),
	}); err != nil {
		t.Fatal(err)
	}
	after, err := sys.Run(count)
	if err != nil {
		t.Fatal(err)
	}
	if after.Result.Rows[0][0].I != before.Result.Rows[0][0].I+2 {
		t.Errorf("count %d -> %d, want +2",
			before.Result.Rows[0][0].I, after.Result.Rows[0][0].I)
	}
}

func TestRefreshLogReplacesData(t *testing.T) {
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := multistore.DefaultConfig(multistore.VariantMSMiso)
	cfg.SetBudgets(cat, 2.0, 10<<30)
	sys := multistore.New(cfg, cat)

	if _, err := sys.RefreshLog(data.TweetsLog, []string{
		tweetLine(t, 1), tweetLine(t, 2), tweetLine(t, 3),
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run("SELECT COUNT(*) AS n FROM tweets")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Rows[0][0].I != 3 {
		t.Errorf("refreshed log has %d rows, want 3", rep.Result.Rows[0][0].I)
	}

	if _, err := sys.AppendToLog("no_such_log", []string{"{}"}); err == nil {
		t.Error("append to unknown log succeeded")
	}
}

package multistore_test

import (
	"context"
	"errors"
	"sort"
	"testing"

	"miso/internal/data"
	"miso/internal/faults"
	"miso/internal/multistore"
	"miso/internal/serve"
	"miso/internal/workload"
)

// newDurableSystem boots a small MS-MISO system with the durability plane on.
func newDurableSystem(t *testing.T, p faults.Profile, seed int64, every int) (*multistore.System, multistore.Config) {
	t.Helper()
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	cfg := multistore.DefaultConfig(multistore.VariantMSMiso)
	cfg.SetBudgets(cat, 2.0, 10<<30)
	cfg.Faults = p
	cfg.FaultSeed = seed
	cfg.CheckpointEvery = every
	sys := multistore.New(cfg, cat)
	if err := sys.ProvideFutureWorkload(workload.SQLs()); err != nil {
		t.Fatalf("future workload: %v", err)
	}
	return sys, cfg
}

// designNames flattens both stores' view names, sorted.
func designNames(sys *multistore.System) []string {
	var names []string
	for _, v := range sys.HV().Views.All() {
		names = append(names, "H:"+v.Name)
	}
	for _, v := range sys.DW().Views.All() {
		names = append(names, "D:"+v.Name)
	}
	sort.Strings(names)
	return names
}

func sameNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// recoverFrom kills sys and rebuilds it from its last checkpoint and WAL,
// perturbing the seed per attempt like the crash harness does.
func recoverFrom(t *testing.T, cfg multistore.Config, sys *multistore.System, attempt int) (*multistore.System, *struct {
	replayed, quarantined, rolledBackReorgs, rolledBackTransfers int
	torn                                                         int
}) {
	t.Helper()
	mgr := sys.Durability()
	if mgr == nil {
		t.Fatal("durability disabled")
	}
	rcfg := cfg
	rcfg.FaultSeed = cfg.FaultSeed + int64(attempt)
	rec, rep, err := multistore.Recover(rcfg, sys.Catalog(), mgr.Latest(), mgr.WAL())
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if err := rec.CheckInvariants(); err != nil {
		t.Fatalf("recovered system violates invariants: %v", err)
	}
	out := &struct {
		replayed, quarantined, rolledBackReorgs, rolledBackTransfers int
		torn                                                         int
	}{rep.ReplayedRecords, len(rep.Quarantined), rep.RolledBackReorgs, rep.RolledBackTransfers, rep.TornBytes}
	return rec, out
}

// runToCompletion drives the workload prefix through the kill/recover loop
// and returns the final system plus the crash count.
func runToCompletion(t *testing.T, cfg multistore.Config, sys *multistore.System, queries []string) (*multistore.System, int) {
	t.Helper()
	crashes := 0
	for i := 0; i < len(queries); {
		_, err := sys.Run(queries[i])
		if err == nil {
			i = len(sys.Reports())
			continue
		}
		if !errors.Is(err, faults.ErrCrash) {
			t.Fatalf("query %d failed with a non-crash error: %v", i, err)
		}
		crashes++
		if crashes > 64 {
			t.Fatalf("crash loop: %d deaths over %d queries", crashes, len(queries))
		}
		sys, _ = recoverFrom(t, cfg, sys, crashes)
		// Committed work survives: the recovered system never loses a
		// completed query.
		if got := len(sys.Reports()); got > i {
			t.Fatalf("recovery invented %d completed queries, had %d", got, i)
		}
		i = len(sys.Reports())
	}
	return sys, crashes
}

// TestRecoverPerCrashSite is the per-site crash regression: each armed site
// must kill the process at least once, and the kill/recover/resubmit loop
// must complete the workload prefix with invariants intact throughout.
func TestRecoverPerCrashSite(t *testing.T) {
	cases := []struct {
		name string
		p    faults.Profile
		seed int64
	}{
		{"crash-serve", faults.Profile{}.With(faults.SiteCrashServe, 0.25), 3},
		{"crash-transfer", faults.Profile{}.With(faults.SiteCrashTransfer, 0.20), 5},
		// 0.5, not 1.0: an always-crashing reorg can never commit, so the
		// loop would re-crash at the same decision point forever.
		{"crash-reorg", faults.Profile{}.With(faults.SiteCrashReorg, 0.5), 7},
		{"wal-write", faults.Profile{}.With(faults.SiteWALWrite, 0.02), 11},
	}
	sqls := workload.SQLs()[:12]
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			sys, cfg := newDurableSystem(t, tc.p, tc.seed, 3)
			sys, crashes := runToCompletion(t, cfg, sys, sqls)
			if crashes == 0 {
				t.Fatalf("site never fired; the regression tested nothing")
			}
			if got := len(sys.Reports()); got != len(sqls) {
				t.Fatalf("completed %d of %d queries", got, len(sqls))
			}
			for i, rep := range sys.Reports() {
				if rep.Seq != i {
					t.Fatalf("report %d has seq %d: replay reordered the workload", i, rep.Seq)
				}
			}
			// Every surviving view must pass its content checksum.
			for _, v := range append(sys.HV().Views.All(), sys.DW().Views.All()...) {
				if !v.Verify() {
					t.Errorf("view %s fails verification after recovery", v.Name)
				}
			}
		})
	}
}

// TestRecoverRollsBackUncommittedReorg arms the reorg crash site at 100%:
// the first reorganization dies after its moves but before its commit
// record, and recovery must discard it entirely.
func TestRecoverRollsBackUncommittedReorg(t *testing.T) {
	sys, cfg := newDurableSystem(t, faults.Profile{}.With(faults.SiteCrashReorg, 1.0), 7, 100)
	var crashErr error
	for _, sql := range workload.SQLs() {
		if _, err := sys.Run(sql); err != nil {
			crashErr = err
			break
		}
	}
	if crashErr == nil {
		t.Skip("workload never triggered a reorganization at this scale")
	}
	if !errors.Is(crashErr, faults.ErrCrash) {
		t.Fatalf("reorg failed with a non-crash error: %v", crashErr)
	}
	rec, rep := recoverFrom(t, cfg, sys, 1)
	if rep.rolledBackReorgs != 1 {
		t.Errorf("rolled back %d reorgs, want 1", rep.rolledBackReorgs)
	}
	if got := len(rec.ReorgLog()); got != 0 {
		t.Errorf("uncommitted reorganization survived into the recovered log (%d entries)", got)
	}
	if rec.Metrics().Reorgs != 0 {
		t.Errorf("uncommitted reorganization counted in metrics")
	}
}

// TestRecoverQuarantinesCorruptPayloads corrupts every durable view copy:
// replayed admits must be quarantined, never installed, and the recovered
// system must still serve queries.
func TestRecoverQuarantinesCorruptPayloads(t *testing.T) {
	// Boot checkpoint only (cadence 100): recovery replays every admit from
	// the WAL's corrupted payload space.
	sys, cfg := newDurableSystem(t, faults.Profile{}.With(faults.SiteViewCorrupt, 1.0), 9, 100)
	sqls := workload.SQLs()[:6]
	for i, sql := range sqls {
		if _, err := sys.Run(sql); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if sys.HV().Views.Len()+sys.DW().Views.Len() == 0 {
		t.Fatal("workload prefix admitted no views; nothing to corrupt")
	}
	rec, rep := recoverFrom(t, cfg, sys, 1)
	if rep.quarantined == 0 {
		t.Fatal("no corrupted payloads quarantined")
	}
	// Only views with nothing to flip (empty materializations) may survive;
	// every survivor must still pass verification.
	for _, v := range append(rec.HV().Views.All(), rec.DW().Views.All()...) {
		if !v.Verify() {
			t.Errorf("corrupt view %s rejoined the design", v.Name)
		}
		if v.Table != nil && v.Table.NumRows() > 0 {
			t.Errorf("non-empty view %s escaped corruption", v.Name)
		}
	}
	if rec.Metrics().Quarantined != rep.quarantined {
		t.Errorf("quarantine count not charged to metrics: %d vs %d",
			rec.Metrics().Quarantined, rep.quarantined)
	}
	if rec.Metrics().Recovery <= sys.Metrics().Recovery {
		t.Error("recovery work not charged to RECOVERY TTI")
	}
	if _, err := rec.Run(sqls[len(sqls)-1]); err != nil {
		t.Fatalf("recovered system cannot serve: %v", err)
	}
}

// TestRecoverTornTail tears arbitrary suffixes off a live WAL: recovery
// must come back clean from every cut, never panicking and never violating
// invariants.
func TestRecoverTornTail(t *testing.T) {
	sys, cfg := newDurableSystem(t, faults.Profile{}, 1, 2)
	sqls := workload.SQLs()[:8]
	for i, sql := range sqls {
		if _, err := sys.Run(sql); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	wal := sys.Durability().WAL()
	total := wal.LSN()
	for _, tear := range []int{1, 7, 64, 333, total / 2, total} {
		wal.Tear(tear)
		rec, _ := recoverFrom(t, cfg, sys, tear)
		if got := len(rec.Reports()); got > len(sqls) {
			t.Fatalf("tear %d: recovery invented queries (%d)", tear, got)
		}
	}
}

// TestCleanShutdownByteIdentity checkpoints a live system and recovers a
// twin from it: with nothing to replay, every digest-covered field must be
// byte-identical.
func TestCleanShutdownByteIdentity(t *testing.T) {
	sys, cfg := newDurableSystem(t, faults.Profile{}, 1, 4)
	for i, sql := range workload.SQLs()[:8] {
		if _, err := sys.Run(sql); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	ckpt := sys.Checkpoint()
	twin, rep, err := multistore.Recover(cfg, sys.Catalog(), ckpt, sys.Durability().WAL())
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rep.ReplayedRecords != 0 || rep.TornBytes != 0 {
		t.Fatalf("clean shutdown replayed %d records, tore %d bytes", rep.ReplayedRecords, rep.TornBytes)
	}
	if rep.Seconds != 0 {
		t.Errorf("clean-shutdown recovery charged %.3fs", rep.Seconds)
	}
	if got, want := twin.StateDigest(), sys.StateDigest(); got != want {
		t.Fatalf("clean-shutdown digest %016x != live %016x", got, want)
	}
	if !sameNames(designNames(twin), designNames(sys)) {
		t.Error("clean-shutdown design differs from live design")
	}
	// The twin is live: it can keep serving where the original stopped.
	if _, err := twin.Run(workload.SQLs()[8]); err != nil {
		t.Fatalf("recovered twin cannot continue the workload: %v", err)
	}
}

// TestDurabilityZeroOverhead runs the same workload prefix with the
// durability plane on and off: journaling must charge no simulated time and
// perturb no metric.
func TestDurabilityZeroOverhead(t *testing.T) {
	run := func(every int) multistore.Metrics {
		cat, err := data.Generate(data.SmallConfig())
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		cfg := multistore.DefaultConfig(multistore.VariantMSMiso)
		cfg.SetBudgets(cat, 2.0, 10<<30)
		cfg.CheckpointEvery = every
		sys := multistore.New(cfg, cat)
		for i, sql := range workload.SQLs()[:10] {
			if _, err := sys.Run(sql); err != nil {
				t.Fatalf("query %d: %v", i, err)
			}
		}
		return sys.Metrics()
	}
	if on, off := run(4), run(0); on != off {
		t.Fatalf("durability perturbed the run:\n on  %+v\n off %+v", on, off)
	}
}

// TestServeResumesOnRecoveredSystem recovers a crashed system and puts the
// concurrent serving frontend on top of it.
func TestServeResumesOnRecoveredSystem(t *testing.T) {
	sys, cfg := newDurableSystem(t, faults.Profile{}.With(faults.SiteCrashServe, 0.25), 3, 3)
	var crashed bool
	for _, sql := range workload.SQLs()[:12] {
		if _, err := sys.Run(sql); err != nil {
			if !errors.Is(err, faults.ErrCrash) {
				t.Fatalf("non-crash error: %v", err)
			}
			crashed = true
			break
		}
	}
	if !crashed {
		t.Fatal("crash site never fired")
	}
	rec, _ := recoverFrom(t, cfg, sys, 1)
	srv := serve.NewServer(serve.Config{Workers: 2}, rec)
	defer srv.Close()
	done := len(rec.Reports())
	for _, sql := range workload.SQLs()[done : done+3] {
		rep, err := srv.Do(context.Background(), sql)
		if err != nil && !errors.Is(err, faults.ErrCrash) {
			t.Fatalf("serve on recovered system: %v", err)
		}
		if err == nil && rep.Result == nil {
			t.Fatal("served query returned no result")
		}
		if errors.Is(err, faults.ErrCrash) {
			// The site is still armed; one more recovery keeps serving.
			rec, _ = recoverFrom(t, cfg, rec, 2)
			srv.Close()
			srv = serve.NewServer(serve.Config{Workers: 2}, rec)
		}
	}
	if err := rec.CheckInvariants(); err != nil {
		t.Fatalf("invariants after serving: %v", err)
	}
}

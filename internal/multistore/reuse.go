package multistore

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"miso/internal/history"
	"miso/internal/logical"
	"miso/internal/mqo"
	"miso/internal/storage"
)

// ReuseConfig configures the cross-query reuse plane: single-flight
// piggybacking of identical concurrent queries plus the content-hashed
// semantic result/subresult cache. The zero value disables the plane
// entirely — a disabled system takes the exact pre-reuse code path, so
// its results, metrics, and StateDigest are byte-identical to a build
// without the plane.
type ReuseConfig struct {
	// Enabled turns on both layers: the in-flight registry (concurrent
	// queries with identical canonical plans over identical log content
	// share one execution) and the semantic cache (repeated plans are
	// answered from digest-verified materializations).
	Enabled bool
	// CacheBytes bounds the semantic cache's materialized results;
	// admission charges the system memory pool when one is configured.
	// Zero means DefaultCacheBytes.
	CacheBytes int64
}

// DefaultCacheBytes is the semantic cache bound when ReuseConfig.Enabled
// is set with CacheBytes zero.
const DefaultCacheBytes int64 = 64 << 20

// ReuseStats snapshots both reuse layers.
type ReuseStats struct {
	Cache  mqo.CacheStats
	Flight mqo.FlightStats
}

// errLeaderFailed is what followers of a failed single-flight leader
// observe internally; they never share it — each falls back to its own
// cold execution.
var errLeaderFailed = errors.New("multistore: reuse leader failed")

// reusePlane is the per-System reuse state. It doubles as the
// mqo.VersionSource: log content versions are mirrored here (seeded at
// construction, maintained by every catalog mutation under s.mu) so the
// lock-free fingerprint path never reads catalog fields that queries
// mutate — fingerprinting must run outside s.mu or followers could never
// overlap a leader's execution.
type reusePlane struct {
	flight *mqo.Registry
	cache  *mqo.Cache

	verMu sync.RWMutex
	vers  map[string]logVersion
}

type logVersion struct{ gen, lines int }

// LogVersion implements mqo.VersionSource.
func (p *reusePlane) LogVersion(name string) (gen, lines int, ok bool) {
	p.verMu.RLock()
	defer p.verMu.RUnlock()
	v, ok := p.vers[name]
	return v.gen, v.lines, ok
}

// newReusePlane builds the plane and seeds the version mirror from the
// catalog's current logs.
func newReusePlane(cfg ReuseConfig, s *System) *reusePlane {
	capBytes := cfg.CacheBytes
	if capBytes <= 0 {
		capBytes = DefaultCacheBytes
	}
	p := &reusePlane{
		flight: mqo.NewRegistry(),
		cache:  mqo.NewCache(capBytes, s.memPool),
		vers:   make(map[string]logVersion),
	}
	for _, name := range s.cat.LogNames() {
		if log, err := s.cat.Log(name); err == nil {
			p.vers[name] = logVersion{gen: log.Generation, lines: log.NumLines()}
		}
	}
	return p
}

// syncLogVersion refreshes the version mirror for one log. Callers hold
// s.mu (the same critical section that mutated the log), so fingerprints
// computed outside the lock always see a consistent (gen, lines) pair.
func (s *System) syncLogVersion(name string) {
	if s.reuse == nil {
		return
	}
	log, err := s.cat.Log(name)
	if err != nil {
		return
	}
	s.reuse.verMu.Lock()
	s.reuse.vers[name] = logVersion{gen: log.Generation, lines: log.NumLines()}
	s.reuse.verMu.Unlock()
}

// invalidateReuse drops every cached result and subresult. Callers hold
// s.mu. It fires on every trigger that can change what a fingerprinted
// plan should answer or taint what a cached entry holds: log appends and
// generation bumps, the start of a reorganization (which also keeps the
// tuner's what-if probing deterministic — the optimizer's reuse probe is
// all-false while it runs), stale-view quarantine, and audit quarantine
// of corrupt views whose bytes may have flowed into cached results.
func (s *System) invalidateReuse() {
	if s.reuse == nil {
		return
	}
	s.reuse.cache.Clear()
}

// InvalidateReuse is the drain-barrier invalidation hook: the serving
// layer calls it with the write gate held (no query in flight) before an
// online reorganization, and operators may call it any time. A system
// without the reuse plane ignores it.
func (s *System) InvalidateReuse() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.invalidateReuse()
}

// ReuseStats snapshots the reuse plane's cache and single-flight
// counters; zero when the plane is disabled.
func (s *System) ReuseStats() ReuseStats {
	if s.reuse == nil {
		return ReuseStats{}
	}
	return ReuseStats{
		Cache:  s.reuse.cache.Stats(),
		Flight: s.reuse.flight.Stats(),
	}
}

// fingerprintLocked computes the canonical reuse fingerprint of a built
// plan: Normalize collapses adjacent filters and identity projections so
// syntactic variants of the same query coincide, then mqo.HashPlan folds
// the structural signature with every scanned log's content version.
func (s *System) fingerprintLocked(plan *logical.Node) (mqo.Fingerprint, bool) {
	if s.reuse == nil {
		return 0, false
	}
	canon := logical.Normalize(plan)
	return mqo.HashPlan(canon, s.reuse)
}

// cutFingerprint fingerprints a cut's base-data definition, expanding any
// views it reads down to raw log scans — so a cut over a view and the
// equivalent cut over raw logs share one subresult entry.
func (s *System) cutFingerprint(n *logical.Node) (mqo.Fingerprint, bool) {
	if s.reuse == nil {
		return 0, false
	}
	def := s.hv.ExpandViews(n)
	if def == nil {
		return 0, false
	}
	return mqo.HashPlan(def, s.reuse)
}

// runShared is RunContext with the reuse plane enabled. The fingerprint
// is computed outside s.mu (against the version mirror) so concurrent
// identical queries can rendezvous while the leader executes:
//
//	leader:    joins the flight, runs the normal locked path (which
//	           consults and populates the semantic cache), publishes its
//	           result table to the flight.
//	follower:  waits on the leader's call and books the shared table as a
//	           piggybacked zero-cost report; if the leader failed — or the
//	           published digest no longer verifies — it falls back to its
//	           own cold locked execution.
//
// A follower that joined before a concurrent catalog mutation may be
// handed a result computed just after it; that is the usual single-flight
// linearization (the query orders after the mutation) and every handed
// table is digest-verified against what the leader published.
func (s *System) runShared(ctx context.Context, sql string) (*QueryReport, error) {
	fp, ok := s.fingerprintSQL(sql)
	if !ok {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.runLocked(ctx, sql)
	}
	call, leader := s.reuse.flight.Join(fp)
	if !leader {
		if t, shared := s.reuse.flight.Wait(ctx, call); shared {
			return s.bookPiggyback(ctx, sql, t)
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("multistore: query not started: %w", err)
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.runLocked(ctx, sql)
	}
	var rep *QueryReport
	var err error
	defer func() {
		if err == nil && rep != nil && rep.Result != nil {
			s.reuse.flight.Complete(fp, call, rep.Result, storage.ChecksumData(rep.Result), nil)
			return
		}
		cause := err
		if cause == nil {
			cause = errLeaderFailed
		}
		s.reuse.flight.Complete(fp, call, nil, 0, cause)
	}()
	s.mu.Lock()
	defer s.mu.Unlock()
	rep, err = s.runLocked(ctx, sql)
	return rep, err
}

// fingerprintSQL builds and fingerprints sql without holding s.mu. Plan
// building reads only construction-time catalog state (schemas, names),
// never the mutable log content — content versions come from the mirror.
func (s *System) fingerprintSQL(sql string) (mqo.Fingerprint, bool) {
	if s.reuse == nil {
		return 0, false
	}
	plan, err := s.builder.BuildSQL(sql)
	if err != nil {
		return 0, false // the locked path will report the build error
	}
	return s.fingerprintLocked(plan)
}

// bookPiggyback books a follower's shared result as a completed query:
// full bookkeeping (window, sequence, report, durability record), zero
// simulated cost — the leader already paid for the execution — and no
// fault-site draws, since no store work happens.
func (s *System) bookPiggyback(ctx context.Context, sql string, t *storage.Table) (*QueryReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("multistore: query not started: %w", err)
	}
	s.beginOp()
	plan, err := s.builder.BuildSQL(sql)
	if err != nil {
		return nil, err
	}
	entry := history.Entry{Seq: s.seq, SQL: sql, Plan: plan}
	rep := &QueryReport{
		Seq: entry.Seq, SQL: sql,
		Piggybacked: true,
		ResultRows:  t.NumRows(),
		Result:      t,
	}
	s.metrics.Piggybacked++
	return s.bookLocked(entry, rep)
}

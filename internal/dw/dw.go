// Package dw simulates the parallel data warehouse: a hash-partitioned
// RDBMS with far better query performance than HV once data is loaded.
// The store has two table spaces: permanent space holds the DW side of the
// multistore design (views placed by the tuner), temporary space holds
// working sets migrated during query execution, discarded when the query
// ends. DW cannot execute UDFs. Cost is modeled as a small per-query
// startup plus bytes processed through high per-node throughput — the
// asymmetry against HV that drives every result in the paper.
package dw

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"miso/internal/exec"
	"miso/internal/expr"
	"miso/internal/faults"
	"miso/internal/govern"
	"miso/internal/logical"
	"miso/internal/stats"
	"miso/internal/storage"
	"miso/internal/views"
)

// Typed errors callers match with errors.Is.
var (
	// ErrNoSuchTable marks a name found in neither permanent nor temp space.
	ErrNoSuchTable = errors.New("dw: no such table in permanent or temp space")
	// ErrNoBaseLogs marks an attempt to scan raw logs inside DW.
	ErrNoBaseLogs = errors.New("dw: DW holds no base logs")
	// ErrUDF marks a plan containing a UDF, which only HV can execute.
	ErrUDF = errors.New("dw: plan contains a UDF, which only HV can execute")
)

// Config calibrates the DW cluster and cost model.
type Config struct {
	// Nodes is the cluster size (9 in the paper).
	Nodes int
	// Startup is the fixed per-query overhead in seconds.
	Startup float64
	// ScanMBps is the per-node processing throughput.
	ScanMBps float64
	// IndexSelectivityFloor bounds how much an index scan can skip; the
	// loader builds an index on each permanent view's leading column.
	IndexSelectivityFloor float64
	// ExecWorkers selects the execution engine (exec.Env.Workers
	// semantics): 0 runs the morsel engine with GOMAXPROCS workers (the
	// default), n > 0 bounds the pool, and exec.SerialWorkers selects the
	// legacy serial engine. Results are byte-identical at every setting.
	ExecWorkers int
}

// DefaultConfig matches the paper's 9-node commercial parallel row store.
func DefaultConfig() Config {
	return Config{
		Nodes:                 9,
		Startup:               0.5,
		ScanMBps:              450,
		IndexSelectivityFloor: 0.05,
	}
}

// Result reports one (sub)plan execution in DW.
type Result struct {
	Table   *storage.Table
	Seconds float64
}

// Store is the DW instance. Temporary table space is guarded by an
// internal mutex so the serving layer's observers race neither with
// staging nor with the end-of-query cleanup; the Views set is internally
// locked itself, and reassignment of the Views field is serialized by the
// multistore system's mutex.
type Store struct {
	cfg       Config
	est       *stats.Estimator
	execStats *exec.Stats
	execInj   *faults.Injector
	gov       *govern.Ledger

	// Views is the permanent table space: the DW side of the multistore
	// design.
	Views *views.Set

	mu   sync.Mutex
	temp map[string]*storage.Table
}

// NewStore creates an empty DW store.
func NewStore(cfg Config, est *stats.Estimator) *Store {
	return &Store{cfg: cfg, est: est, Views: views.NewSet(), temp: map[string]*storage.Table{}}
}

// Config returns the store configuration.
func (s *Store) Config() Config { return s.cfg }

// StageTemp registers a migrated working set under the given name in
// temporary table space (not part of the physical design).
func (s *Store) StageTemp(name string, t *storage.Table) {
	s.mu.Lock()
	s.temp[name] = t
	s.mu.Unlock()
	s.est.RecordView(name, stats.Stat{Rows: int64(t.NumRows()), Bytes: t.LogicalBytes()})
}

// ClearTemp discards all temporary tables (end of query).
func (s *Store) ClearTemp() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.temp = map[string]*storage.Table{}
}

// Resolve finds a table by view name in permanent then temporary space.
func (s *Store) Resolve(name string) (*storage.Table, error) {
	if v, ok := s.Views.Get(name); ok {
		return v.Table, nil
	}
	s.mu.Lock()
	t, ok := s.temp[name]
	s.mu.Unlock()
	if ok {
		return t, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, name)
}

// SetExecStats attaches a per-operator timing collector to every Env this
// store hands out (nil detaches).
func (s *Store) SetExecStats(st *exec.Stats) { s.execStats = st }

// SetExecFaults arms the exec engine's fault sites with their own
// injector, separate from the store-level one (see hv.Store.SetExecFaults).
func (s *Store) SetExecFaults(inj *faults.Injector) { s.execInj = inj }

// SetGovernor attaches the current query's memory ledger to every Env the
// store hands out; the multistore sets it per query and clears it after.
func (s *Store) SetGovernor(l *govern.Ledger) { s.gov = l }

// Env returns the execution environment. DW has no raw logs: plans must
// bottom out in ViewScans over permanent views or staged temp tables.
func (s *Store) Env() *exec.Env {
	return &exec.Env{
		ReadLog: func(name string) (*storage.LogFile, error) {
			return nil, fmt.Errorf("%w: cannot scan raw log %q", ErrNoBaseLogs, name)
		},
		ReadView: s.Resolve,
		Workers:  s.cfg.ExecWorkers,
		Stats:    s.execStats,
		Mem:      s.gov,
		Inj:      s.execInj,
	}
}

// Execute runs a subplan entirely inside DW. The plan must be UDF-free and
// leaf only on resolvable views/temp tables.
func (s *Store) Execute(plan *logical.Node) (*Result, error) {
	return s.ExecuteContext(context.Background(), plan)
}

// ExecuteContext runs a subplan inside DW, abandoning it at the next
// operator boundary once ctx is done (the error then wraps ctx.Err()).
func (s *Store) ExecuteContext(ctx context.Context, plan *logical.Node) (*Result, error) {
	if plan.UsesUDF() {
		return nil, ErrUDF
	}
	env := s.Env()
	env.Ctx = ctx
	tables := map[*logical.Node]*storage.Table{}
	var run func(n *logical.Node) (*storage.Table, error)
	run = func(n *logical.Node) (*storage.Table, error) {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("dw: abandoned: %w", err)
		}
		var inputs []*storage.Table
		switch n.Kind {
		case logical.KindExtract, logical.KindViewScan:
		default:
			for _, c := range n.Children {
				t, err := run(c)
				if err != nil {
					return nil, err
				}
				inputs = append(inputs, t)
			}
		}
		t, err := exec.RunNode(n, env, inputs)
		if err != nil {
			return nil, err
		}
		// Intermediates pipelined through DW are still real memory: charge
		// their raw bytes; the multistore releases the ledger at query end.
		if err := s.gov.Reserve(t.RawBytes()); err != nil {
			return nil, err
		}
		tables[n] = t
		return t, nil
	}
	out, err := run(plan)
	if err != nil {
		return nil, fmt.Errorf("dw: executing plan: %w", err)
	}
	for n, t := range tables {
		s.est.Record(n.Signature(), stats.Stat{Rows: int64(t.NumRows()), Bytes: t.LogicalBytes()})
	}
	sec := s.costFromSizes(plan, func(n *logical.Node) int64 {
		if t, ok := tables[n]; ok {
			return t.LogicalBytes()
		}
		return 0
	})
	return &Result{Table: out, Seconds: sec}, nil
}

// CostPlan estimates execution time without running the plan (what-if
// mode). This is the store's "what-if interface" in the paper's terms: its
// optimizer units are already normalized to seconds.
func (s *Store) CostPlan(plan *logical.Node) float64 {
	return s.CostPlanWith(plan, nil)
}

// CostPlanWith costs like CostPlan but resolves node sizes through a local
// stat overlay (signature -> stat) before the shared estimator cache. The
// optimizer uses it to cost DW remainders that read hypothetical migrated
// working sets (ws_0, ws_1, ...) without publishing their stats, keeping
// the what-if path read-only and safe for concurrent use.
func (s *Store) CostPlanWith(plan *logical.Node, overlay map[string]stats.Stat) float64 {
	// The cost walk sizes each node once per parent visit; memoize per
	// call so a node's subtree is estimated once, not once per appearance
	// as an input.
	sizes := map[*logical.Node]int64{}
	return s.costFromSizes(plan, func(n *logical.Node) int64 {
		if b, ok := sizes[n]; ok {
			return b
		}
		b := s.est.EstimateWith(n, overlay).Bytes
		sizes[n] = b
		return b
	})
}

// CostPlanBaseline costs like CostPlanWith but re-estimates each subtree
// at every appearance instead of memoizing sizes per call — the original
// cost walk, kept so the benchmark pipeline can record the tuner's
// speedup baseline in-repo. Both variants compute identical costs.
func (s *Store) CostPlanBaseline(plan *logical.Node, overlay map[string]stats.Stat) float64 {
	return s.costFromSizes(plan, func(n *logical.Node) int64 {
		return s.est.EstimateWith(n, overlay).Bytes
	})
}

// costFromSizes charges each operator its input bytes through the cluster
// throughput. Filters directly over an indexed permanent view scan less.
func (s *Store) costFromSizes(plan *logical.Node, size func(*logical.Node) int64) float64 {
	throughput := s.cfg.ScanMBps * float64(s.cfg.Nodes) * 1e6
	var bytes float64
	var walk func(n *logical.Node)
	walk = func(n *logical.Node) {
		for _, c := range n.Children {
			walk(c)
			b := float64(size(c))
			if n.Kind == logical.KindFilter && c.Kind == logical.KindViewScan {
				if sel, ok := s.indexSelectivity(n, c); ok {
					b *= sel
				}
			}
			bytes += b
		}
	}
	walk(plan)
	// The root's output is returned to the client; charge it once.
	bytes += float64(size(plan))
	return s.cfg.Startup + bytes/throughput
}

// indexSelectivity reports the fraction of an indexed view a filter must
// read, when the filter constrains the view's leading column with an
// equality or IN predicate. Only permanent views are indexed (the tuner
// builds the index at load time); temp tables are not.
func (s *Store) indexSelectivity(filter, scan *logical.Node) (float64, bool) {
	v, ok := s.Views.Get(scan.ViewName)
	if !ok || v.Table.Schema.Len() == 0 {
		return 0, false
	}
	lead := v.Table.Schema.Columns[0].Name
	for _, c := range expr.Conjuncts(filter.Pred) {
		switch e := c.(type) {
		case *expr.BinOp:
			if e.Op != "=" {
				continue
			}
			if refsColumn(e.L, lead) || refsColumn(e.R, lead) {
				return s.floorSel(0.1), true
			}
		case *expr.In:
			if !e.Neg && refsColumn(e.E, lead) {
				return s.floorSel(0.1 * float64(len(e.Items))), true
			}
		}
	}
	return 0, false
}

func (s *Store) floorSel(sel float64) float64 {
	if sel < s.cfg.IndexSelectivityFloor {
		return s.cfg.IndexSelectivityFloor
	}
	if sel > 1 {
		return 1
	}
	return sel
}

func refsColumn(e expr.Expr, name string) bool {
	c, ok := e.(*expr.ColRef)
	return ok && c.Name == name
}

package dw_test

import (
	"strings"
	"testing"

	"miso/internal/data"
	"miso/internal/dw"
	"miso/internal/exec"
	"miso/internal/expr"
	"miso/internal/hv"
	"miso/internal/logical"
	"miso/internal/stats"
	"miso/internal/storage"
	"miso/internal/views"
)

type fixture struct {
	cat *storage.Catalog
	b   *logical.Builder
	est *stats.Estimator
	hv  *hv.Store
	dw  *dw.Store
}

func setup(t *testing.T) *fixture {
	t.Helper()
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	est := stats.NewEstimator(cat)
	return &fixture{
		cat: cat,
		b:   logical.NewBuilder(cat),
		est: est,
		hv:  hv.NewStore(hv.DefaultConfig(), cat, est),
		dw:  dw.NewStore(dw.DefaultConfig(), est),
	}
}

// loadView materializes a query's SPJ core in HV and installs it as a DW
// permanent view.
func (f *fixture) loadView(t *testing.T, sql string) *views.View {
	t.Helper()
	plan, err := f.b.BuildSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	core := plan
	for core.Kind == logical.KindProject || core.Kind == logical.KindSort ||
		core.Kind == logical.KindLimit {
		core = core.Child(0)
	}
	table, err := exec.Run(core, f.hv.Env())
	if err != nil {
		t.Fatal(err)
	}
	v := views.New(core, table, 0)
	f.dw.Views.Add(v)
	f.est.RecordView(v.Name, stats.Stat{Rows: int64(table.NumRows()), Bytes: table.LogicalBytes()})
	return v
}

func TestExecuteOverPermanentView(t *testing.T) {
	f := setup(t)
	v := f.loadView(t, "SELECT tweet_id FROM tweets WHERE lang = 'en'")
	scan := logical.NewViewScan(v.Name, v.Table.Schema)
	res, err := f.dw.Execute(scan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != v.Table.NumRows() {
		t.Errorf("rows = %d, want %d", res.Table.NumRows(), v.Table.NumRows())
	}
	if res.Seconds <= 0 {
		t.Error("zero cost")
	}
}

func TestExecuteRejectsUDF(t *testing.T) {
	f := setup(t)
	plan, err := f.b.BuildSQL("SELECT tweet_id FROM tweets WHERE SENTIMENT(text) > 0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.dw.Execute(plan); err == nil {
		t.Fatal("UDF plan executed in DW")
	} else if !strings.Contains(err.Error(), "UDF") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestExecuteRejectsRawLogs(t *testing.T) {
	f := setup(t)
	plan, err := f.b.BuildSQL("SELECT tweet_id FROM tweets")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.dw.Execute(plan); err == nil {
		t.Fatal("raw-log scan executed in DW")
	}
}

func TestTempSpaceLifecycle(t *testing.T) {
	f := setup(t)
	tbl := storage.NewTable("ws", storage.MustSchema(
		storage.Column{Name: "x", Type: storage.KindInt}))
	tbl.MustAppend(storage.Row{storage.IntValue(1)})
	f.dw.StageTemp("ws_0", tbl)
	if _, err := f.dw.Resolve("ws_0"); err != nil {
		t.Fatalf("temp not resolvable: %v", err)
	}
	scan := logical.NewViewScan("ws_0", tbl.Schema)
	res, err := f.dw.Execute(scan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 1 {
		t.Error("temp table content lost")
	}
	f.dw.ClearTemp()
	if _, err := f.dw.Resolve("ws_0"); err == nil {
		t.Error("temp survived ClearTemp")
	}
}

func TestPermanentShadowsNothingAndResolveOrder(t *testing.T) {
	f := setup(t)
	v := f.loadView(t, "SELECT checkin_id FROM checkins WHERE category = 'bar'")
	got, err := f.dw.Resolve(v.Name)
	if err != nil || got != v.Table {
		t.Fatalf("permanent resolve failed: %v", err)
	}
	if _, err := f.dw.Resolve("missing"); err == nil {
		t.Error("missing name resolved")
	}
}

func TestIndexSelectivityDiscountsCost(t *testing.T) {
	f := setup(t)
	v := f.loadView(t, "SELECT tweet_id FROM tweets WHERE lang = 'en'")
	lead := v.Table.Schema.Columns[0].Name
	scan := logical.NewViewScan(v.Name, v.Table.Schema)

	// Filter with an equality on the view's leading (indexed) column.
	indexed, err := logical.NewFilterNode(scan, eqPred(lead, v.Table.Rows[0][0]))
	if err != nil {
		t.Fatal(err)
	}
	// Filter on a non-leading column.
	other := v.Table.Schema.Columns[1].Name
	unindexed, err := logical.NewFilterNode(
		logical.NewViewScan(v.Name, v.Table.Schema), eqPred(other, v.Table.Rows[0][1]))
	if err != nil {
		t.Fatal(err)
	}
	ci := f.dw.CostPlan(indexed)
	cu := f.dw.CostPlan(unindexed)
	if ci >= cu {
		t.Errorf("indexed filter cost %.4f not below unindexed %.4f", ci, cu)
	}
}

func eqPred(col string, val storage.Value) expr.Expr {
	return &expr.BinOp{Op: "=", L: &expr.ColRef{Name: col}, R: &expr.Const{Val: val}}
}

package audit_test

import (
	"errors"
	"testing"
	"time"

	"miso/internal/audit"
	"miso/internal/data"
	"miso/internal/faults"
	"miso/internal/multistore"
	"miso/internal/workload"
)

// buildSystem boots a small durable MS-MISO system with the bit-rot site
// armed at the given rate (0 disables it).
func buildSystem(t *testing.T, rot float64) *multistore.System {
	t.Helper()
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	cfg := multistore.DefaultConfig(multistore.VariantMSMiso)
	cfg.SetBudgets(cat, 2.0, 10<<30)
	cfg.Faults = faults.Profile{}.With(faults.SiteViewRot, rot)
	cfg.FaultSeed = 7
	cfg.CheckpointEvery = 4
	sys := multistore.New(cfg, cat)
	if err := sys.ProvideFutureWorkload(workload.SQLs()); err != nil {
		t.Fatalf("future workload: %v", err)
	}
	return sys
}

// TestObserveModeReportsWithoutRepair runs with bit rot armed on every
// operation until a corruption is observable, then checks that an
// observe-only pass reports it without repairing anything and that the
// report's error matches ErrAuditViolation.
func TestObserveModeReportsWithoutRepair(t *testing.T) {
	sys := buildSystem(t, 1.0)
	var got []multistore.AuditViolation
	sc := audit.New(sys, audit.Config{})
	for i, sql := range workload.SQLs() {
		if _, err := sys.Run(sql); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		viols, err := sc.RunOnce()
		if err != nil {
			t.Fatalf("audit after query %d: %v", i, err)
		}
		if len(viols) > 0 {
			got = viols
			break
		}
	}
	if len(got) == 0 {
		t.Fatal("bit rot on every operation never became observable")
	}
	for _, v := range got {
		if v.Repaired || v.Quarantined {
			t.Fatalf("observe-only pass mutated the system: %+v", v)
		}
	}
	rep := sc.Report()
	if rep.Detected == 0 || rep.Unrepaired == 0 || rep.Repaired != 0 {
		t.Fatalf("observe-mode counters wrong: %+v", rep)
	}
	if err := rep.Err(); !errors.Is(err, audit.ErrAuditViolation) {
		t.Fatalf("report error %v does not match ErrAuditViolation", err)
	}
	var ve *audit.ViolationError
	if !errors.As(rep.Err(), &ve) || len(ve.Violations) == 0 {
		t.Fatalf("report error %v is not a populated *ViolationError", rep.Err())
	}
}

// TestRepairModeConvergesToClean injects rot across the full workload,
// then checks a repair pass self-heals everything: the follow-up
// observe-only pass finds nothing and every rotted name is either
// repaired in place or gone from both stores.
func TestRepairModeConvergesToClean(t *testing.T) {
	sys := buildSystem(t, 1.0)
	for i, sql := range workload.SQLs() {
		if _, err := sys.Run(sql); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if len(sys.RotLog()) == 0 {
		t.Fatal("no rot was injected across the workload")
	}

	sc := audit.New(sys, audit.Config{Repair: true})
	if _, err := sc.RunOnce(); err != nil {
		t.Fatalf("repair pass: %v", err)
	}
	rep := sc.Report()
	if rep.Unrepaired != 0 {
		t.Fatalf("repair pass left %d unrepaired violations: %+v", rep.Unrepaired, rep.Violations)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("repair report error: %v", err)
	}

	final, err := audit.RunOnce(sys, false)
	if err != nil {
		t.Fatalf("final observe pass: %v", err)
	}
	if len(final) != 0 {
		t.Fatalf("system still dirty after repair: %v", final)
	}
	for _, name := range sys.RotLog() {
		hv, hok := sys.HV().Views.Get(name)
		dw, dok := sys.DW().Views.Get(name)
		if hok && !hv.Verify() {
			t.Fatalf("rotted view %s still corrupt in HV", name)
		}
		if dok && !dw.Verify() {
			t.Fatalf("rotted view %s still corrupt in DW", name)
		}
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatalf("invariants after repair: %v", err)
	}
}

// TestBackgroundScrubberUnderLoad runs the scrubber concurrently with
// the serialized query flow while rot is injected, then checks the
// system converges clean — the bread-and-butter deployment shape.
func TestBackgroundScrubberUnderLoad(t *testing.T) {
	sys := buildSystem(t, 0.5)
	sc := audit.New(sys, audit.Config{Interval: time.Millisecond, ChunkViews: 2, Repair: true})
	sc.Start()
	for i, sql := range workload.SQLs() {
		if _, err := sys.Run(sql); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	sc.Stop()
	rep := sc.Report()
	if rep.Fatal != nil {
		t.Fatalf("scrubber died: %v", rep.Fatal)
	}
	if rep.Chunks == 0 {
		t.Fatal("background scrubber never ran a chunk")
	}
	// Finish any repair the background loop had not reached yet, then
	// verify cleanliness with an independent observer.
	if _, err := sc.RunOnce(); err != nil {
		t.Fatalf("final repair pass: %v", err)
	}
	final, err := audit.RunOnce(sys, false)
	if err != nil {
		t.Fatalf("final observe pass: %v", err)
	}
	if len(final) != 0 {
		t.Fatalf("system dirty after background scrubbing: %v", final)
	}
}

// TestScrubberLifecycle checks Start/Stop idempotence and that RunOnce
// works without Start.
func TestScrubberLifecycle(t *testing.T) {
	sys := buildSystem(t, 0)
	sc := audit.New(sys, audit.Config{Interval: time.Millisecond})
	sc.Stop() // no-op before Start
	sc.Start()
	sc.Start() // idempotent
	sc.Stop()
	sc.Stop() // idempotent
	if viols, err := sc.RunOnce(); err != nil || len(viols) != 0 {
		t.Fatalf("RunOnce on a clean system: viols=%v err=%v", viols, err)
	}
	if rep := sc.Report(); rep.Passes == 0 {
		t.Fatalf("RunOnce did not record a pass: %+v", rep)
	}
	if got := audit.Families(); len(got) != 6 {
		t.Fatalf("Families() = %v, want 6 invariant families", got)
	}
}

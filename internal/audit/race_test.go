package audit_test

// Race-enabled regressions for the scrubber's concurrency contract: a
// scrub chunk observes the catalog either entirely before or entirely
// after a reorganization or recovery — never a torn mix. Run these under
// -race (the tier-1 Makefile target does).

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"miso/internal/audit"
	"miso/internal/data"
	"miso/internal/faults"
	"miso/internal/multistore"
	"miso/internal/serve"
	"miso/internal/workload"
)

// TestScrubDuringReorganize drives concurrent queries and explicit
// drain-barrier reorganizations while the scrubber runs with the
// serving plane's Quiesce hook. On a clean system a torn observation
// would surface as a spurious violation (disjointness or placement
// drift mid-swap), so the assertion is zero detections across the run.
func TestScrubDuringReorganize(t *testing.T) {
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	cfg := multistore.DefaultConfig(multistore.VariantMSMiso)
	cfg.SetBudgets(cat, 2.0, 10<<30)
	cfg.CheckpointEvery = 4
	// The server owns reorganization scheduling behind its drain barrier.
	cfg.ReorgEvery = 0
	sys := multistore.New(cfg, cat)
	if err := sys.ProvideFutureWorkload(workload.SQLs()); err != nil {
		t.Fatalf("future workload: %v", err)
	}
	srv := serve.NewServer(serve.Config{Workers: 4, QueryTimeout: 30 * time.Second,
		DrainTimeout: 5 * time.Second}, sys)
	defer srv.Close()

	sc := audit.New(sys, audit.Config{Interval: 200 * time.Microsecond, ChunkViews: 2,
		Repair: true, Quiesce: srv.Quiesce})
	sc.Start()

	sqls := workload.SQLs()
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2*len(sqls); i++ {
				_, err := srv.Do(context.Background(), sqls[(g+i)%len(sqls)])
				if err != nil && !errors.Is(err, serve.ErrShed) {
					errCh <- err
					return
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	reorgs := 0
	for {
		select {
		case <-done:
		case err := <-errCh:
			t.Fatalf("query failed: %v", err)
		case <-time.After(5 * time.Millisecond):
			if err := srv.Reorganize(); err != nil {
				t.Fatalf("reorganize: %v", err)
			}
			reorgs++
			continue
		}
		break
	}
	sc.Stop()

	if reorgs == 0 {
		t.Fatal("no reorganization ran concurrently with the scrubber")
	}
	rep := sc.Report()
	if rep.Fatal != nil {
		t.Fatalf("scrubber died: %v", rep.Fatal)
	}
	if rep.Chunks == 0 {
		t.Fatal("scrubber never ran a chunk during the load")
	}
	if rep.Detected != 0 {
		t.Fatalf("scrubber reported %d spurious violations on a clean system (torn observation): %v",
			rep.Detected, rep.Violations)
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatalf("invariants after concurrent scrubbing: %v", err)
	}
}

// TestScrubDuringRecovery keeps a repair-mode scrubber running while
// crash faults kill the system mid-operation; after each recovery a
// fresh scrubber attaches to the recovered system. The recovered state
// must always audit clean.
func TestScrubDuringRecovery(t *testing.T) {
	cat, err := data.Generate(data.SmallConfig())
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	cfg := multistore.DefaultConfig(multistore.VariantMSMiso)
	cfg.SetBudgets(cat, 2.0, 10<<30)
	cfg.CheckpointEvery = 4
	cfg.Faults = faults.Profile{}.
		With(faults.SiteCrashReorg, 0.4).
		With(faults.SiteCrashTransfer, 0.2)
	cfg.FaultSeed = 21
	sys := multistore.New(cfg, cat)
	if err := sys.ProvideFutureWorkload(workload.SQLs()); err != nil {
		t.Fatalf("future workload: %v", err)
	}

	newScrub := func(s *multistore.System) *audit.Scrubber {
		sc := audit.New(s, audit.Config{Interval: 200 * time.Microsecond, ChunkViews: 2, Repair: true})
		sc.Start()
		return sc
	}
	sc := newScrub(sys)
	crashes := 0
	for i, sql := range workload.SQLs() {
		if _, err := sys.Run(sql); err != nil {
			if !errors.Is(err, faults.ErrCrash) {
				t.Fatalf("query %d: %v", i, err)
			}
			// The process died with the scrubber racing it; recovery must
			// produce a clean system regardless of what the scrubber was
			// doing at the instant of the crash.
			sc.Stop()
			crashes++
			recovered, _, rerr := multistore.Recover(cfg, sys.Catalog(),
				sys.Durability().Latest(), sys.Durability().WAL())
			if rerr != nil {
				t.Fatalf("recover after query %d: %v", i, rerr)
			}
			sys = recovered
			if viols, aerr := audit.RunOnce(sys, false); aerr != nil || len(viols) != 0 {
				t.Fatalf("recovered system audits dirty after query %d: %v %v", i, viols, aerr)
			}
			sc = newScrub(sys)
		}
	}
	sc.Stop()
	if rep := sc.Report(); rep.Fatal != nil {
		t.Fatalf("scrubber died: %v", rep.Fatal)
	}
	if crashes == 0 {
		t.Fatal("no crash fired; the recovery path was never exercised")
	}
	if viols, err := audit.RunOnce(sys, false); err != nil || len(viols) != 0 {
		t.Fatalf("final system audits dirty: %v %v", viols, err)
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatalf("invariants at exit: %v", err)
	}
}

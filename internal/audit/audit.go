// Package audit is the always-on integrity plane: a background scrubber
// that incrementally walks the multistore's view catalogs under live
// serving and verifies the invariants the system otherwise only checks
// at recovery — per-view content checksums, base-log freshness,
// Vh ∩ Vd disjointness, storage/transfer-budget conservation, and
// WAL/state consistency. Violations surface as typed ErrAuditViolation
// events; in repair mode, corrupt or stale views are self-healed by
// recomputation through the HV fallback path (charged to RECOVERY) and
// unrepairable ones are quarantined online, so the multistore converges
// back to a clean design without a restart.
//
// The scrubber is rate-limited (a bounded chunk of views per tick, a
// configurable pause between ticks) and cooperates with the serving
// plane's drain barrier through Config.Quiesce: each chunk runs while
// holding the barrier for read, exactly as an executing query does, so
// scrubbing and online reorganization strictly alternate and a chunk
// observes the catalog either entirely before or entirely after a
// reorganization — never a torn mix. Within the backend, every audit
// entry point serializes under the system mutex, so the same holds even
// without a serving frontend.
package audit

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"miso/internal/multistore"
)

// ErrAuditViolation is the sentinel every reported integrity violation
// wraps; callers match it with errors.Is.
var ErrAuditViolation = errors.New("audit: integrity violation")

// ViolationError carries the violations behind an ErrAuditViolation.
type ViolationError struct {
	Violations []multistore.AuditViolation
}

func (e *ViolationError) Error() string {
	if len(e.Violations) == 1 {
		return "audit: integrity violation: " + e.Violations[0].String()
	}
	return fmt.Sprintf("audit: %d integrity violations (first: %s)",
		len(e.Violations), e.Violations[0].String())
}

func (e *ViolationError) Unwrap() error { return ErrAuditViolation }

// Families lists the invariant families a full audit pass verifies, in
// reporting order.
func Families() []string {
	return []string{
		multistore.InvChecksum,
		multistore.InvFreshness,
		multistore.InvDisjoint,
		multistore.InvBudget,
		multistore.InvAccounting,
		multistore.InvWAL,
	}
}

// Config tunes the scrubber. The zero value scrubs 8 views per chunk
// every 5ms in observe-only mode with no drain-barrier hook.
type Config struct {
	// Interval is the pause between scrub chunks — the rate limit that
	// keeps the scrubber from starving the serialized query flow.
	Interval time.Duration
	// ChunkViews bounds the views verified per chunk (<= 0 uses 8).
	ChunkViews int
	// Repair enables self-healing: failing views are recomputed through
	// the HV fallback path or quarantined, invariant breaches are healed
	// where possible. Without it the scrubber only observes and counts.
	Repair bool
	// Quiesce, when set, is called around every chunk and full-pass
	// invariant audit; it registers the scrubber with the serving plane's
	// drain barrier (serve.Server.Quiesce) and returns the release
	// function. Nil is fine when no serving frontend is running.
	Quiesce func() (release func())
	// OnViolation, when set, is called for every violation as it is
	// found, from the scrubber goroutine (or the RunOnce caller).
	OnViolation func(multistore.AuditViolation)
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 5 * time.Millisecond
	}
	if c.ChunkViews <= 0 {
		c.ChunkViews = 8
	}
	return c
}

// maxKeptViolations bounds the violations retained in the report; the
// counters keep counting past it.
const maxKeptViolations = 256

// Report is a snapshot of what the scrubber has seen.
type Report struct {
	// Passes counts completed full passes (catalog walk wrapped plus one
	// system-invariant audit); Chunks counts individual scrub chunks.
	Passes int
	Chunks int
	// Detected counts every violation found; Repaired those self-healed;
	// Unrepaired those only observed or quarantined. Persistent
	// violations found again on a later pass count again.
	Detected   int
	Repaired   int
	Unrepaired int
	// Violations holds the first maxKeptViolations violations;
	// DroppedViolations counts the rest.
	Violations        []multistore.AuditViolation
	DroppedViolations int
	// Fatal is a torn-WAL error that stopped the scrubber, if any.
	Fatal error
}

// Err returns nil when every detected violation was repaired, and a
// *ViolationError (matching ErrAuditViolation) listing the unrepaired
// ones otherwise.
func (r Report) Err() error {
	if r.Fatal != nil {
		return r.Fatal
	}
	if r.Unrepaired == 0 {
		return nil
	}
	var un []multistore.AuditViolation
	for _, v := range r.Violations {
		if !v.Repaired {
			un = append(un, v)
		}
	}
	if len(un) == 0 {
		// All unrepaired violations were beyond the retention cap.
		un = append(un, multistore.AuditViolation{
			Invariant: "unknown",
			Detail:    fmt.Sprintf("%d unrepaired violations, details dropped", r.Unrepaired),
		})
	}
	return &ViolationError{Violations: un}
}

// Scrubber owns the background scrub loop over one system. Create with
// New, then Start/Stop, or drive it synchronously with RunOnce.
type Scrubber struct {
	cfg Config
	sys *multistore.System

	mu     sync.Mutex
	rep    Report
	cursor string

	stop chan struct{}
	wg   sync.WaitGroup
}

// New builds a scrubber over the system. It does nothing until Start or
// RunOnce is called.
func New(sys *multistore.System, cfg Config) *Scrubber {
	return &Scrubber{cfg: cfg.withDefaults(), sys: sys}
}

// Start launches the background scrub loop. Stop tears it down.
func (sc *Scrubber) Start() {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.stop != nil {
		return
	}
	sc.stop = make(chan struct{})
	sc.wg.Add(1)
	go sc.loop(sc.stop)
}

// Stop halts the background loop and waits for it to exit. Safe to call
// without Start or more than once.
func (sc *Scrubber) Stop() {
	sc.mu.Lock()
	stop := sc.stop
	sc.stop = nil
	sc.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	sc.wg.Wait()
}

func (sc *Scrubber) loop(stop chan struct{}) {
	defer sc.wg.Done()
	t := time.NewTicker(sc.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if err := sc.step(); err != nil {
				// A torn WAL append means the simulated process is dead;
				// scrubbing on would only compound the damage.
				sc.mu.Lock()
				sc.rep.Fatal = err
				sc.mu.Unlock()
				return
			}
		}
	}
}

// step runs one scrub chunk — and, when the catalog walk wraps, the
// full-pass system-invariant audit — under the drain barrier.
func (sc *Scrubber) step() error {
	sc.mu.Lock()
	cursor := sc.cursor
	sc.mu.Unlock()

	release := func() {}
	if sc.cfg.Quiesce != nil {
		release = sc.cfg.Quiesce()
	}
	defer release()

	viols, next, err := sc.sys.AuditViews(cursor, sc.cfg.ChunkViews, sc.cfg.Repair)
	sc.record(viols, true, next == "")
	if err != nil {
		return err
	}
	if next == "" {
		iviols, ierr := sc.sys.AuditInvariants(sc.cfg.Repair)
		sc.record(iviols, false, false)
		if ierr != nil {
			return ierr
		}
	}
	sc.mu.Lock()
	sc.cursor = next
	sc.mu.Unlock()
	return nil
}

func (sc *Scrubber) record(viols []multistore.AuditViolation, chunk, wrapped bool) {
	sc.mu.Lock()
	if chunk {
		sc.rep.Chunks++
	}
	if wrapped {
		sc.rep.Passes++
	}
	for _, v := range viols {
		sc.rep.Detected++
		if v.Repaired {
			sc.rep.Repaired++
		} else {
			sc.rep.Unrepaired++
		}
		if len(sc.rep.Violations) < maxKeptViolations {
			sc.rep.Violations = append(sc.rep.Violations, v)
		} else {
			sc.rep.DroppedViolations++
		}
	}
	cb := sc.cfg.OnViolation
	sc.mu.Unlock()
	if cb != nil {
		for _, v := range viols {
			cb(v)
		}
	}
}

// RunOnce performs one complete synchronous audit pass — the full
// catalog walk in one chunk plus the system-invariant audit — and
// returns the violations it found. The pass is recorded in the report
// like any background pass. The error return is reserved for a torn WAL
// append while journaling a repair.
func (sc *Scrubber) RunOnce() ([]multistore.AuditViolation, error) {
	release := func() {}
	if sc.cfg.Quiesce != nil {
		release = sc.cfg.Quiesce()
	}
	defer release()

	var all []multistore.AuditViolation
	cursor := ""
	for {
		viols, next, err := sc.sys.AuditViews(cursor, 0, sc.cfg.Repair)
		all = append(all, viols...)
		sc.record(viols, true, next == "")
		if err != nil {
			return all, err
		}
		if next == "" {
			break
		}
		cursor = next
	}
	iviols, err := sc.sys.AuditInvariants(sc.cfg.Repair)
	all = append(all, iviols...)
	sc.record(iviols, false, false)
	return all, err
}

// Report returns a snapshot of the scrubber's counters and retained
// violations.
func (sc *Scrubber) Report() Report {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	r := sc.rep
	r.Violations = append([]multistore.AuditViolation(nil), sc.rep.Violations...)
	return r
}

// RunOnce audits the system once, synchronously, without constructing a
// long-lived scrubber: one full catalog walk plus the system-invariant
// audit. It returns the violations found; the error is reserved for a
// torn WAL append while journaling a repair.
func RunOnce(sys *multistore.System, repair bool) ([]multistore.AuditViolation, error) {
	return New(sys, Config{Repair: repair}).RunOnce()
}

// Package faults is the deterministic fault-injection plane of the
// multistore system. A seeded Injector draws failures from a per-site
// Profile at every point where a real deployment can break — HV stage
// execution, HDFS materialization, each phase of the dump→network→load
// transfer pipeline, DW bulk loads and queries, and reorganization view
// movements — and the stores' recovery machinery (retry with capped
// exponential backoff, resume from the last materialized boundary, HV
// fallback, reorg rollback) charges every wasted second to simulated time.
//
// Determinism guarantee: for a fixed (Profile, seed) pair, the sequence of
// injected failures is a pure function of the sequence of Check calls, so a
// chaos run is exactly reproducible. A zero-rate site never consumes
// randomness, which keeps an all-zero profile a strict no-op: the system
// with faults disabled is byte-identical to one with no injector at all.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// Site identifies one injection point in the system.
type Site int

// The injection sites, in pipeline order.
const (
	// SiteHVStage is the execution of one HV (MapReduce-style) job.
	SiteHVStage Site = iota
	// SiteHDFSWrite is the materialization of a stage output to HDFS.
	SiteHDFSWrite
	// SiteTransferDump is the dump phase of a working-set transfer.
	SiteTransferDump
	// SiteTransferNet is the network phase of a transfer.
	SiteTransferNet
	// SiteTransferLoad is the DW temp-space bulk load of a working set.
	SiteTransferLoad
	// SiteDWLoad is the DW permanent-space bulk load (reorg moves, ETL).
	SiteDWLoad
	// SiteDWQuery is a query execution inside DW.
	SiteDWQuery
	// SiteReorgMove is the catalog commit of a reorganization view move.
	SiteReorgMove
	// SiteCrashReorg kills the process mid-reorganization, after at least
	// one view move has been applied but before the design swap commits.
	SiteCrashReorg
	// SiteCrashTransfer kills the process mid-transfer, after the transfer
	// has been journaled as begun but before the temp load commits.
	SiteCrashTransfer
	// SiteCrashServe kills the process while serving a query, after the
	// plan is built but before any store executes it.
	SiteCrashServe
	// SiteWALWrite tears a write-ahead-log append: only a seeded prefix of
	// the record's frame reaches the log, as if the process died mid-write.
	SiteWALWrite
	// SiteViewCorrupt flips bytes in a durably stored view or transferred
	// working set, detected later by a content-checksum mismatch.
	SiteViewCorrupt
	// SiteExecPanic panics a morsel worker goroutine mid-operator. The
	// governance plane contains it: the query fails with a typed
	// govern.ErrInternal while the process and other queries survive.
	SiteExecPanic
	// SiteMemPressure fails a memory reservation in the exec engine as if
	// the query's ledger were exhausted, aborting it with govern.ErrMemLimit.
	SiteMemPressure
	// SiteSlowMorsel stalls one morsel's processing by a small bounded
	// wall-clock sleep (frac-scaled), creating straggler workers that
	// exercise cancellation latency under load.
	SiteSlowMorsel
	// SiteViewRot silently flips a value inside a resident materialized
	// view's table without updating its catalog checksum — bit rot that no
	// query path notices until the integrity scrubber (or a recovery pass)
	// re-verifies content checksums.
	SiteViewRot

	numSites
)

var siteNames = [numSites]string{
	"hv-stage", "hdfs-write", "transfer-dump", "transfer-net",
	"transfer-load", "dw-load", "dw-query", "reorg-move",
	"crash-reorg", "crash-transfer", "crash-serve", "wal-write",
	"view-corrupt", "exec-panic", "mem-pressure", "slow-morsel",
	"view-rot",
}

func (s Site) String() string {
	if s < 0 || s >= numSites {
		return fmt.Sprintf("site(%d)", int(s))
	}
	return siteNames[s]
}

// Profile holds the per-site failure probabilities (0 disables a site).
type Profile struct {
	HVStage       float64
	HDFSWrite     float64
	TransferDump  float64
	TransferNet   float64
	TransferLoad  float64
	DWLoad        float64
	DWQuery       float64
	ReorgMove     float64
	CrashReorg    float64
	CrashTransfer float64
	CrashServe    float64
	WALWrite      float64
	ViewCorrupt   float64
	ExecPanic     float64
	MemPressure   float64
	SlowMorsel    float64
	ViewRot       float64
}

// Uniform returns a profile with the same rate at every operational site.
// Crash, WAL-tear, and corruption sites stay zero: they terminate or poison
// the process rather than one operation, so they are only meaningful under
// a harness that recovers (see Profile.With and the crash sweep). The
// exec-plane governance sites (exec-panic, mem-pressure, slow-morsel) also
// stay zero: they fire inside concurrent morsel workers, so which query
// absorbs a draw depends on goroutine scheduling — arm them explicitly
// when exercising the governance plane (see the governance sweep).
func Uniform(rate float64) Profile {
	return Profile{
		HVStage: rate, HDFSWrite: rate,
		TransferDump: rate, TransferNet: rate, TransferLoad: rate,
		DWLoad: rate, DWQuery: rate, ReorgMove: rate,
	}
}

// With returns a copy of the profile with the given site's rate replaced.
func (p Profile) With(s Site, rate float64) Profile {
	switch s {
	case SiteHVStage:
		p.HVStage = rate
	case SiteHDFSWrite:
		p.HDFSWrite = rate
	case SiteTransferDump:
		p.TransferDump = rate
	case SiteTransferNet:
		p.TransferNet = rate
	case SiteTransferLoad:
		p.TransferLoad = rate
	case SiteDWLoad:
		p.DWLoad = rate
	case SiteDWQuery:
		p.DWQuery = rate
	case SiteReorgMove:
		p.ReorgMove = rate
	case SiteCrashReorg:
		p.CrashReorg = rate
	case SiteCrashTransfer:
		p.CrashTransfer = rate
	case SiteCrashServe:
		p.CrashServe = rate
	case SiteWALWrite:
		p.WALWrite = rate
	case SiteViewCorrupt:
		p.ViewCorrupt = rate
	case SiteExecPanic:
		p.ExecPanic = rate
	case SiteMemPressure:
		p.MemPressure = rate
	case SiteSlowMorsel:
		p.SlowMorsel = rate
	case SiteViewRot:
		p.ViewRot = rate
	}
	return p
}

// Rate returns the failure probability at the given site.
func (p Profile) Rate(s Site) float64 {
	switch s {
	case SiteHVStage:
		return p.HVStage
	case SiteHDFSWrite:
		return p.HDFSWrite
	case SiteTransferDump:
		return p.TransferDump
	case SiteTransferNet:
		return p.TransferNet
	case SiteTransferLoad:
		return p.TransferLoad
	case SiteDWLoad:
		return p.DWLoad
	case SiteDWQuery:
		return p.DWQuery
	case SiteReorgMove:
		return p.ReorgMove
	case SiteCrashReorg:
		return p.CrashReorg
	case SiteCrashTransfer:
		return p.CrashTransfer
	case SiteCrashServe:
		return p.CrashServe
	case SiteWALWrite:
		return p.WALWrite
	case SiteViewCorrupt:
		return p.ViewCorrupt
	case SiteExecPanic:
		return p.ExecPanic
	case SiteMemPressure:
		return p.MemPressure
	case SiteSlowMorsel:
		return p.SlowMorsel
	case SiteViewRot:
		return p.ViewRot
	default:
		return 0
	}
}

// ExecOnly returns a profile carrying only the exec-plane governance
// sites, for the separate injector the exec engine draws from. Keeping
// exec draws off the main injector preserves the main sequence's
// determinism: concurrent morsel workers never perturb the globally
// ordered draws of the serialized stage/transfer/crash sites.
func (p Profile) ExecOnly() Profile {
	return Profile{ExecPanic: p.ExecPanic, MemPressure: p.MemPressure, SlowMorsel: p.SlowMorsel}
}

// Zero reports whether every site's rate is zero (injection disabled).
func (p Profile) Zero() bool { return p == Profile{} }

// Fault is the typed error produced by an injected failure. Callers
// unwrap it with errors.As to learn which site failed and on which
// attempt.
type Fault struct {
	// Site is where the failure was injected.
	Site Site
	// Op describes the operation that failed (for the error message).
	Op string
	// Attempt is the 1-based attempt number that failed.
	Attempt int
}

func (f *Fault) Error() string {
	return fmt.Sprintf("faults: injected %s failure during %s (attempt %d)", f.Site, f.Op, f.Attempt)
}

// ErrExhausted marks an operation whose retries ran out; it always wraps
// the final Fault, so both errors.Is(err, ErrExhausted) and
// errors.As(err, &fault) work on the same error chain.
var ErrExhausted = errors.New("faults: retries exhausted")

// Exhausted wraps the last fault of an operation that ran out of attempts.
func Exhausted(last *Fault) error {
	return fmt.Errorf("%w after %d attempts: %w", ErrExhausted, last.Attempt, last)
}

// ErrCrash marks a simulated process kill: the operation did not merely
// fail, the whole system died mid-flight. Callers surface it to the crash
// harness, which tears the WAL tail and rebuilds the system with Recover.
var ErrCrash = errors.New("faults: simulated process crash")

// Crash wraps ErrCrash with the site at which the process died. Both
// errors.Is(err, ErrCrash) and errors.As(err, &fault) work on the chain.
func Crash(site Site) error {
	return fmt.Errorf("%w at %s: %w", ErrCrash, site, &Fault{Site: site, Op: "crash", Attempt: 1})
}

// ErrCorrupt marks a content-checksum mismatch on a stored view or
// transferred working set. It is deliberately distinct from ErrExhausted so
// the serve-layer circuit breaker (which keys on exhaustion) ignores it.
var ErrCorrupt = errors.New("faults: content checksum mismatch")

// Corrupt wraps ErrCorrupt with the name of the damaged object.
func Corrupt(name string) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, name)
}

// RetryPolicy is the shared recovery policy: bounded attempts with capped
// exponential backoff. Backoff waits are charged to simulated time, never
// to the wall clock.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts, including the first.
	MaxAttempts int
	// BaseBackoff is the simulated seconds waited after the first failure.
	BaseBackoff float64
	// BackoffFactor multiplies the wait after each further failure.
	BackoffFactor float64
	// MaxBackoff caps a single wait.
	MaxBackoff float64
}

// DefaultRetry returns the system-wide recovery policy: up to 6 attempts,
// backoff 5s, 10s, 20s, 40s, 60s (capped).
func DefaultRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 6, BaseBackoff: 5, BackoffFactor: 2, MaxBackoff: 60}
}

// OrDefault returns the policy itself, or DefaultRetry for the zero value,
// so a zero-valued config field means "default policy" rather than "no
// retries at all".
func (r RetryPolicy) OrDefault() RetryPolicy {
	if r.MaxAttempts <= 0 {
		return DefaultRetry()
	}
	return r
}

// Backoff returns the simulated wait after the given 1-based failed
// attempt.
func (r RetryPolicy) Backoff(attempt int) float64 {
	if attempt < 1 {
		attempt = 1
	}
	b := r.BaseBackoff
	for i := 1; i < attempt; i++ {
		b *= r.BackoffFactor
		if b >= r.MaxBackoff {
			return r.MaxBackoff
		}
	}
	if b > r.MaxBackoff {
		return r.MaxBackoff
	}
	return b
}

// Budget caps how many retries one query (or one reorganization phase)
// may pay across every recovery path it touches — HV stage retries, the
// resumable transfer pipeline, and DW query replays. The per-phase
// RetryPolicy still bounds each individual phase; the budget bounds their
// sum, so a fault storm degrades a query linearly instead of letting every
// phase burn a full retry allowance. A nil Budget is valid and unlimited,
// which keeps a zero-configured budget a strict no-op.
type Budget struct {
	mu        sync.Mutex
	remaining int
	spent     int
}

// NewBudget returns a budget of n retries, or nil when n <= 0 (unlimited),
// so the disabled configuration attaches nothing at all.
func NewBudget(n int) *Budget {
	if n <= 0 {
		return nil
	}
	return &Budget{remaining: n}
}

// Take consumes one retry from the budget, reporting false when the budget
// is exhausted (the caller then gives up with Exhausted instead of paying
// another attempt). A nil budget always grants.
func (b *Budget) Take() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.remaining <= 0 {
		return false
	}
	b.remaining--
	b.spent++
	return true
}

// Spent returns how many retries the budget has granted.
func (b *Budget) Spent() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.spent
}

// Remaining returns the retries left, or -1 for a nil (unlimited) budget.
func (b *Budget) Remaining() int {
	if b == nil {
		return -1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.remaining
}

// ErrBudget marks a recovery path stopped by an exhausted retry budget
// rather than its per-phase retry policy. It wraps ErrExhausted so every
// existing fallback and breaker path treats it as exhaustion.
var ErrBudget = fmt.Errorf("%w: query retry budget exhausted", ErrExhausted)

// BudgetExhausted wraps the fault that the budget refused to retry.
func BudgetExhausted(last *Fault) error {
	return fmt.Errorf("%w (attempt %d): %w", ErrBudget, last.Attempt, last)
}

// Injector draws failures from a profile with a seeded generator. A nil
// Injector is valid and never fails anything, so call sites need no
// guards. Injector is safe for concurrent use: Check serializes draws
// behind an internal mutex, so the draw sequence stays a pure function of
// the (globally ordered) sequence of Check calls. The multistore system
// additionally serializes query execution, which keeps that order — and
// therefore chaos runs — deterministic for a fixed submission order.
type Injector struct {
	mu      sync.Mutex
	profile Profile
	rng     *rand.Rand
	counts  [numSites]int
}

// NewInjector creates an injector for the profile. It returns nil for an
// all-zero profile: the caller's nil-injector fast paths then keep the
// fault plane strictly additive.
func NewInjector(p Profile, seed int64) *Injector {
	if p.Zero() {
		return nil
	}
	return &Injector{profile: p, rng: rand.New(rand.NewSource(seed))}
}

// Enabled reports whether the injector can inject anything.
func (in *Injector) Enabled() bool { return in != nil }

// Check draws one outcome for the site. When it fails, frac is the
// fraction of the operation completed before the failure hit (uniform in
// [0,1)), which callers use to charge partially wasted work. Zero-rate
// sites consume no randomness and never fail.
func (in *Injector) Check(site Site) (failed bool, frac float64) {
	if in == nil {
		return false, 1
	}
	rate := in.profile.Rate(site)
	if rate <= 0 {
		return false, 1
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.rng.Float64() >= rate {
		return false, 1
	}
	in.counts[site]++
	return true, in.rng.Float64()
}

// Injected returns how many failures have been injected at the site.
func (in *Injector) Injected(site Site) int {
	if in == nil || site < 0 || site >= numSites {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[site]
}

// TotalInjected returns the total number of injected failures.
func (in *Injector) TotalInjected() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, c := range in.counts {
		n += c
	}
	return n
}

// Package faults is the deterministic fault-injection plane of the
// multistore system. A seeded Injector draws failures from a per-site
// Profile at every point where a real deployment can break — HV stage
// execution, HDFS materialization, each phase of the dump→network→load
// transfer pipeline, DW bulk loads and queries, and reorganization view
// movements — and the stores' recovery machinery (retry with capped
// exponential backoff, resume from the last materialized boundary, HV
// fallback, reorg rollback) charges every wasted second to simulated time.
//
// Determinism guarantee: for a fixed (Profile, seed) pair, the sequence of
// injected failures is a pure function of the sequence of Check calls, so a
// chaos run is exactly reproducible. A zero-rate site never consumes
// randomness, which keeps an all-zero profile a strict no-op: the system
// with faults disabled is byte-identical to one with no injector at all.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// Site identifies one injection point in the system.
type Site int

// The injection sites, in pipeline order.
const (
	// SiteHVStage is the execution of one HV (MapReduce-style) job.
	SiteHVStage Site = iota
	// SiteHDFSWrite is the materialization of a stage output to HDFS.
	SiteHDFSWrite
	// SiteTransferDump is the dump phase of a working-set transfer.
	SiteTransferDump
	// SiteTransferNet is the network phase of a transfer.
	SiteTransferNet
	// SiteTransferLoad is the DW temp-space bulk load of a working set.
	SiteTransferLoad
	// SiteDWLoad is the DW permanent-space bulk load (reorg moves, ETL).
	SiteDWLoad
	// SiteDWQuery is a query execution inside DW.
	SiteDWQuery
	// SiteReorgMove is the catalog commit of a reorganization view move.
	SiteReorgMove

	numSites
)

var siteNames = [numSites]string{
	"hv-stage", "hdfs-write", "transfer-dump", "transfer-net",
	"transfer-load", "dw-load", "dw-query", "reorg-move",
}

func (s Site) String() string {
	if s < 0 || s >= numSites {
		return fmt.Sprintf("site(%d)", int(s))
	}
	return siteNames[s]
}

// Profile holds the per-site failure probabilities (0 disables a site).
type Profile struct {
	HVStage      float64
	HDFSWrite    float64
	TransferDump float64
	TransferNet  float64
	TransferLoad float64
	DWLoad       float64
	DWQuery      float64
	ReorgMove    float64
}

// Uniform returns a profile with the same rate at every site.
func Uniform(rate float64) Profile {
	return Profile{
		HVStage: rate, HDFSWrite: rate,
		TransferDump: rate, TransferNet: rate, TransferLoad: rate,
		DWLoad: rate, DWQuery: rate, ReorgMove: rate,
	}
}

// Rate returns the failure probability at the given site.
func (p Profile) Rate(s Site) float64 {
	switch s {
	case SiteHVStage:
		return p.HVStage
	case SiteHDFSWrite:
		return p.HDFSWrite
	case SiteTransferDump:
		return p.TransferDump
	case SiteTransferNet:
		return p.TransferNet
	case SiteTransferLoad:
		return p.TransferLoad
	case SiteDWLoad:
		return p.DWLoad
	case SiteDWQuery:
		return p.DWQuery
	case SiteReorgMove:
		return p.ReorgMove
	default:
		return 0
	}
}

// Zero reports whether every site's rate is zero (injection disabled).
func (p Profile) Zero() bool { return p == Profile{} }

// Fault is the typed error produced by an injected failure. Callers
// unwrap it with errors.As to learn which site failed and on which
// attempt.
type Fault struct {
	// Site is where the failure was injected.
	Site Site
	// Op describes the operation that failed (for the error message).
	Op string
	// Attempt is the 1-based attempt number that failed.
	Attempt int
}

func (f *Fault) Error() string {
	return fmt.Sprintf("faults: injected %s failure during %s (attempt %d)", f.Site, f.Op, f.Attempt)
}

// ErrExhausted marks an operation whose retries ran out; it always wraps
// the final Fault, so both errors.Is(err, ErrExhausted) and
// errors.As(err, &fault) work on the same error chain.
var ErrExhausted = errors.New("faults: retries exhausted")

// Exhausted wraps the last fault of an operation that ran out of attempts.
func Exhausted(last *Fault) error {
	return fmt.Errorf("%w after %d attempts: %w", ErrExhausted, last.Attempt, last)
}

// RetryPolicy is the shared recovery policy: bounded attempts with capped
// exponential backoff. Backoff waits are charged to simulated time, never
// to the wall clock.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts, including the first.
	MaxAttempts int
	// BaseBackoff is the simulated seconds waited after the first failure.
	BaseBackoff float64
	// BackoffFactor multiplies the wait after each further failure.
	BackoffFactor float64
	// MaxBackoff caps a single wait.
	MaxBackoff float64
}

// DefaultRetry returns the system-wide recovery policy: up to 6 attempts,
// backoff 5s, 10s, 20s, 40s, 60s (capped).
func DefaultRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 6, BaseBackoff: 5, BackoffFactor: 2, MaxBackoff: 60}
}

// OrDefault returns the policy itself, or DefaultRetry for the zero value,
// so a zero-valued config field means "default policy" rather than "no
// retries at all".
func (r RetryPolicy) OrDefault() RetryPolicy {
	if r.MaxAttempts <= 0 {
		return DefaultRetry()
	}
	return r
}

// Backoff returns the simulated wait after the given 1-based failed
// attempt.
func (r RetryPolicy) Backoff(attempt int) float64 {
	if attempt < 1 {
		attempt = 1
	}
	b := r.BaseBackoff
	for i := 1; i < attempt; i++ {
		b *= r.BackoffFactor
		if b >= r.MaxBackoff {
			return r.MaxBackoff
		}
	}
	if b > r.MaxBackoff {
		return r.MaxBackoff
	}
	return b
}

// Injector draws failures from a profile with a seeded generator. A nil
// Injector is valid and never fails anything, so call sites need no
// guards. Injector is safe for concurrent use: Check serializes draws
// behind an internal mutex, so the draw sequence stays a pure function of
// the (globally ordered) sequence of Check calls. The multistore system
// additionally serializes query execution, which keeps that order — and
// therefore chaos runs — deterministic for a fixed submission order.
type Injector struct {
	mu      sync.Mutex
	profile Profile
	rng     *rand.Rand
	counts  [numSites]int
}

// NewInjector creates an injector for the profile. It returns nil for an
// all-zero profile: the caller's nil-injector fast paths then keep the
// fault plane strictly additive.
func NewInjector(p Profile, seed int64) *Injector {
	if p.Zero() {
		return nil
	}
	return &Injector{profile: p, rng: rand.New(rand.NewSource(seed))}
}

// Enabled reports whether the injector can inject anything.
func (in *Injector) Enabled() bool { return in != nil }

// Check draws one outcome for the site. When it fails, frac is the
// fraction of the operation completed before the failure hit (uniform in
// [0,1)), which callers use to charge partially wasted work. Zero-rate
// sites consume no randomness and never fail.
func (in *Injector) Check(site Site) (failed bool, frac float64) {
	if in == nil {
		return false, 1
	}
	rate := in.profile.Rate(site)
	if rate <= 0 {
		return false, 1
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.rng.Float64() >= rate {
		return false, 1
	}
	in.counts[site]++
	return true, in.rng.Float64()
}

// Injected returns how many failures have been injected at the site.
func (in *Injector) Injected(site Site) int {
	if in == nil || site < 0 || site >= numSites {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[site]
}

// TotalInjected returns the total number of injected failures.
func (in *Injector) TotalInjected() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, c := range in.counts {
		n += c
	}
	return n
}

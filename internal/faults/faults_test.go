package faults

import (
	"errors"
	"fmt"
	"math"
	"testing"
)

func TestZeroProfileNeverFails(t *testing.T) {
	in := NewInjector(Profile{}, 1)
	if in != nil {
		t.Fatal("zero profile should yield a nil injector")
	}
	if in.Enabled() {
		t.Error("nil injector reports enabled")
	}
	for s := Site(0); s < numSites; s++ {
		if failed, _ := in.Check(s); failed {
			t.Fatalf("nil injector failed site %s", s)
		}
	}
	if in.TotalInjected() != 0 || in.Injected(SiteHVStage) != 0 {
		t.Error("nil injector counts nonzero")
	}
}

func TestDeterminism(t *testing.T) {
	draw := func() []bool {
		in := NewInjector(Uniform(0.3), 42)
		out := make([]bool, 200)
		for i := range out {
			failed, _ := in.Check(Site(i % int(numSites)))
			out[i] = failed
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between identical injectors", i)
		}
	}
}

func TestSeedChangesOutcomes(t *testing.T) {
	a := NewInjector(Uniform(0.5), 1)
	b := NewInjector(Uniform(0.5), 2)
	same := true
	for i := 0; i < 64; i++ {
		fa, _ := a.Check(SiteHVStage)
		fb, _ := b.Check(SiteHVStage)
		if fa != fb {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical 64-draw outcomes")
	}
}

func TestZeroRateSiteConsumesNoRandomness(t *testing.T) {
	// Interleaving checks of a zero-rate site must not perturb the
	// stream seen by live sites.
	p := Profile{HVStage: 0.5} // every other site zero
	a := NewInjector(p, 7)
	b := NewInjector(p, 7)
	for i := 0; i < 100; i++ {
		fa, _ := a.Check(SiteHVStage)
		b.Check(SiteDWQuery) // zero-rate: must be a no-op on the stream
		fb, _ := b.Check(SiteHVStage)
		if fa != fb {
			t.Fatalf("draw %d perturbed by zero-rate site check", i)
		}
	}
}

func TestCheckRateAndCounts(t *testing.T) {
	in := NewInjector(Profile{DWQuery: 0.25}, 99)
	n := 10000
	failures := 0
	for i := 0; i < n; i++ {
		failed, frac := in.Check(SiteDWQuery)
		if failed {
			failures++
			if frac < 0 || frac >= 1 {
				t.Fatalf("frac %v out of [0,1)", frac)
			}
		} else if frac != 1 {
			t.Fatalf("success frac = %v, want 1", frac)
		}
	}
	if in.Injected(SiteDWQuery) != failures || in.TotalInjected() != failures {
		t.Error("counts do not match observed failures")
	}
	got := float64(failures) / float64(n)
	if math.Abs(got-0.25) > 0.02 {
		t.Errorf("empirical rate %.3f, want ~0.25", got)
	}
}

func TestBackoffSchedule(t *testing.T) {
	r := DefaultRetry()
	want := []float64{5, 10, 20, 40, 60, 60}
	for i, w := range want {
		if got := r.Backoff(i + 1); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	if got := r.Backoff(0); got != 5 {
		t.Errorf("Backoff(0) clamps to first attempt, got %v", got)
	}
}

func TestOrDefault(t *testing.T) {
	if got := (RetryPolicy{}).OrDefault(); got != DefaultRetry() {
		t.Errorf("zero policy OrDefault = %+v", got)
	}
	custom := RetryPolicy{MaxAttempts: 2, BaseBackoff: 1, BackoffFactor: 3, MaxBackoff: 9}
	if got := custom.OrDefault(); got != custom {
		t.Errorf("custom policy OrDefault = %+v", got)
	}
}

func TestFaultErrorChain(t *testing.T) {
	f := &Fault{Site: SiteTransferNet, Op: "move 3 GB to DW", Attempt: 4}
	err := fmt.Errorf("transfer: moving view: %w", Exhausted(f))
	if !errors.Is(err, ErrExhausted) {
		t.Error("errors.Is(ErrExhausted) failed through wrapping")
	}
	var got *Fault
	if !errors.As(err, &got) {
		t.Fatal("errors.As(*Fault) failed through wrapping")
	}
	if got.Site != SiteTransferNet || got.Attempt != 4 {
		t.Errorf("unwrapped fault = %+v", got)
	}
	if got.Error() == "" || f.Site.String() != "transfer-net" {
		t.Error("fault formatting broken")
	}
}

func TestSiteString(t *testing.T) {
	if SiteHVStage.String() != "hv-stage" || SiteReorgMove.String() != "reorg-move" {
		t.Error("site names wrong")
	}
	if Site(99).String() != "site(99)" {
		t.Error("out-of-range site name wrong")
	}
}

func TestProfileRateMapping(t *testing.T) {
	p := Profile{
		HVStage: 0.1, HDFSWrite: 0.2, TransferDump: 0.3, TransferNet: 0.4,
		TransferLoad: 0.5, DWLoad: 0.6, DWQuery: 0.7, ReorgMove: 0.8,
		CrashReorg: 0.01, CrashTransfer: 0.02, CrashServe: 0.03,
		WALWrite: 0.04, ViewCorrupt: 0.05,
		ExecPanic: 0.06, MemPressure: 0.07, SlowMorsel: 0.08,
		ViewRot: 0.09,
	}
	want := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09}
	if len(want) != int(numSites) {
		t.Fatalf("test covers %d sites, have %d", len(want), numSites)
	}
	for s := Site(0); s < numSites; s++ {
		if p.Rate(s) != want[s] {
			t.Errorf("Rate(%s) = %v, want %v", s, p.Rate(s), want[s])
		}
	}
	if p.Rate(Site(99)) != 0 {
		t.Error("unknown site rate should be 0")
	}
	if p.Zero() || !(Profile{}).Zero() {
		t.Error("Zero() wrong")
	}
	u := Uniform(0.05)
	if u.Rate(SiteHVStage) != 0.05 || u.Rate(SiteReorgMove) != 0.05 {
		t.Error("Uniform wrong")
	}
	// Uniform must leave crash/WAL/corruption sites disabled (they need a
	// recovery harness) and the exec-plane governance sites disabled (they
	// fire inside concurrent workers); keeping them out preserves chaos
	// comparability.
	for _, s := range []Site{SiteCrashReorg, SiteCrashTransfer, SiteCrashServe, SiteWALWrite, SiteViewCorrupt, SiteExecPanic, SiteMemPressure, SiteSlowMorsel} {
		if u.Rate(s) != 0 {
			t.Errorf("Uniform set crash site %s to %v", s, u.Rate(s))
		}
	}
	for s := Site(0); s < numSites; s++ {
		if got := (Profile{}).With(s, 0.5).Rate(s); got != 0.5 {
			t.Errorf("With(%s) rate = %v", s, got)
		}
	}
	ex := p.ExecOnly()
	if ex.ExecPanic != 0.06 || ex.MemPressure != 0.07 || ex.SlowMorsel != 0.08 {
		t.Error("ExecOnly dropped exec-plane rates")
	}
	if ex.HVStage != 0 || ex.CrashServe != 0 || ex.WALWrite != 0 {
		t.Error("ExecOnly kept non-exec rates")
	}
}

package faults

import (
	"errors"
	"testing"
)

// TestBudgetDisabledIsNil: a non-positive budget is nil, and the nil
// budget is the unlimited no-op every call site relies on.
func TestBudgetDisabledIsNil(t *testing.T) {
	if b := NewBudget(0); b != nil {
		t.Fatalf("NewBudget(0) = %v, want nil (unlimited)", b)
	}
	if b := NewBudget(-3); b != nil {
		t.Fatalf("NewBudget(-3) = %v, want nil", b)
	}
	var b *Budget
	for i := 0; i < 100; i++ {
		if !b.Take() {
			t.Fatal("nil budget refused a retry")
		}
	}
	if b.Spent() != 0 {
		t.Fatalf("nil budget reports %d spent", b.Spent())
	}
	if b.Remaining() != -1 {
		t.Fatalf("nil budget reports %d remaining, want -1", b.Remaining())
	}
}

// TestBudgetDrains: Take grants exactly n retries, then refuses forever;
// Spent and Remaining track the ledger.
func TestBudgetDrains(t *testing.T) {
	b := NewBudget(3)
	for i := 0; i < 3; i++ {
		if b.Remaining() != 3-i {
			t.Fatalf("before take %d: remaining %d, want %d", i, b.Remaining(), 3-i)
		}
		if !b.Take() {
			t.Fatalf("take %d refused inside the budget", i)
		}
	}
	for i := 0; i < 5; i++ {
		if b.Take() {
			t.Fatal("exhausted budget granted a retry")
		}
	}
	if b.Spent() != 3 || b.Remaining() != 0 {
		t.Fatalf("spent %d remaining %d, want 3 and 0", b.Spent(), b.Remaining())
	}
}

// TestBudgetErrorChain: a budget refusal surfaces as ErrBudget, which
// must also match ErrExhausted so the fallback and breaker paths treat it
// exactly like per-phase retry exhaustion.
func TestBudgetErrorChain(t *testing.T) {
	f := &Fault{Site: SiteDWQuery, Op: "query", Attempt: 2}
	err := BudgetExhausted(f)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err %v does not match ErrBudget", err)
	}
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err %v does not match ErrExhausted", err)
	}
	var got *Fault
	if !errors.As(err, &got) || got != f {
		t.Fatalf("err %v does not carry the refused fault", err)
	}
}

package history

import (
	"testing"
)

func entry(seq int) Entry { return Entry{Seq: seq} }

func TestWindowBounds(t *testing.T) {
	w := NewWindow(3, 1, 0.5)
	for i := 0; i < 5; i++ {
		w.Add(entry(i))
	}
	if w.Len() != 3 {
		t.Fatalf("len = %d", w.Len())
	}
	es := w.Entries()
	if es[0].Seq != 2 || es[2].Seq != 4 {
		t.Errorf("kept %v, want the last three", []int{es[0].Seq, es[1].Seq, es[2].Seq})
	}
}

func TestWeightsDecayByEpoch(t *testing.T) {
	// Window of 6 with epochs of 3: the newest epoch weighs 1, the older
	// one decay.
	w := NewWindow(6, 3, 0.5)
	for i := 0; i < 6; i++ {
		w.Add(entry(i))
	}
	weights := w.Weights()
	want := []float64{0.5, 0.5, 0.5, 1, 1, 1}
	for i := range want {
		if weights[i] != want[i] {
			t.Fatalf("weights = %v, want %v", weights, want)
		}
	}
}

func TestWeightsMonotoneNondecreasing(t *testing.T) {
	w := NewWindow(9, 2, 0.7)
	for i := 0; i < 9; i++ {
		w.Add(entry(i))
	}
	weights := w.Weights()
	for i := 1; i < len(weights); i++ {
		if weights[i] < weights[i-1] {
			t.Fatalf("weights not nondecreasing toward the present: %v", weights)
		}
	}
	if weights[len(weights)-1] != 1 {
		t.Error("newest entry should have weight 1")
	}
}

func TestNoDecayWithUnitFactor(t *testing.T) {
	w := NewWindow(4, 2, 1.0)
	for i := 0; i < 4; i++ {
		w.Add(entry(i))
	}
	for _, wt := range w.Weights() {
		if wt != 1 {
			t.Fatalf("weights = %v, want all 1", w.Weights())
		}
	}
}

func TestDegenerateParamsClamped(t *testing.T) {
	w := NewWindow(0, 0, -1)
	w.Add(entry(1))
	w.Add(entry(2))
	if w.Len() != 1 {
		t.Errorf("maxLen clamp failed: %d", w.Len())
	}
	if w.Weights()[0] != 1 {
		t.Error("invalid decay not clamped to 1")
	}
}

func TestCloneIndependence(t *testing.T) {
	w := NewWindow(5, 2, 0.5)
	w.Add(entry(1))
	c := w.Clone()
	c.Add(entry(2))
	if w.Len() != 1 || c.Len() != 2 {
		t.Error("clone shares storage")
	}
}

// Package history maintains the sliding window of recent queries the MISO
// tuner analyzes, and the epoch-decayed weighting that turns per-query view
// benefits into a predicted future benefit (after Schnaitter et al.'s
// online index selection): the window is divided into epochs and a query's
// weight decays geometrically with its epoch's age, so recent queries
// dominate but older history still smooths the prediction.
package history

import (
	"miso/internal/logical"
)

// Entry is one observed query.
type Entry struct {
	// Seq is the query's position in the workload stream.
	Seq int
	// SQL is the original query text.
	SQL string
	// Plan is the raw (unrewritten) logical plan.
	Plan *logical.Node
}

// Window is a bounded sliding window of recent queries.
type Window struct {
	maxLen   int
	epochLen int
	decay    float64
	entries  []Entry
}

// NewWindow creates a window holding up to maxLen queries, grouped into
// epochs of epochLen queries, weighted by decay^epochAge. decay must be in
// (0, 1].
func NewWindow(maxLen, epochLen int, decay float64) *Window {
	if maxLen < 1 {
		maxLen = 1
	}
	if epochLen < 1 {
		epochLen = 1
	}
	if decay <= 0 || decay > 1 {
		decay = 1
	}
	return &Window{maxLen: maxLen, epochLen: epochLen, decay: decay}
}

// Add appends a query, evicting the oldest entries beyond capacity.
func (w *Window) Add(e Entry) {
	w.entries = append(w.entries, e)
	if len(w.entries) > w.maxLen {
		w.entries = w.entries[len(w.entries)-w.maxLen:]
	}
}

// Len returns the number of queries currently in the window.
func (w *Window) Len() int { return len(w.entries) }

// Entries returns the window contents, oldest first.
func (w *Window) Entries() []Entry { return w.entries }

// Weights returns the decay weight of each entry, parallel to Entries().
// The newest epoch has weight 1; each older epoch is multiplied by decay.
func (w *Window) Weights() []float64 {
	n := len(w.entries)
	out := make([]float64, n)
	for i := range w.entries {
		// Distance from the end, in epochs.
		age := (n - 1 - i) / w.epochLen
		weight := 1.0
		for a := 0; a < age; a++ {
			weight *= w.decay
		}
		out[i] = weight
	}
	return out
}

// Clone returns an independent copy of the window.
func (w *Window) Clone() *Window {
	c := NewWindow(w.maxLen, w.epochLen, w.decay)
	c.entries = append([]Entry(nil), w.entries...)
	return c
}

// Command misobench regenerates the tables and figures of the paper's
// evaluation section plus the extension pipelines. Every experiment is a
// named mode in one registry: -modes lists them, -mode runs any set of
// them, and the legacy spelling flags (-fig, -table, -chaos, ...) remain
// as shorthands for the same names.
//
// Usage:
//
//	misobench -modes                     # list every mode and its artifact
//	misobench -mode fig4,scenarios       # run any modes by name
//	misobench -fig 4                     # Figure 4 (five-variant TTI comparison)
//	misobench -fig 3.2                   # the Section 3.2 two-query experiment
//	misobench -table 2                   # Table 2 (mutual impact)
//	misobench -all -scale small          # every paper figure/table, quickly
//	misobench -chaos                     # fault-injection sweep (extension)
//	misobench -crash                     # crash-recovery sweep (durability extension)
//	misobench -serve -scale small -sessions 8 -workers 4    # concurrent soak
//	misobench -bench -benchout BENCH_tuner.json             # benchmark pipeline
//	misobench -benchexec -benchexecout BENCH_exec.json      # exec engine benchmarks
//	misobench -benchgov -benchgovout BENCH_governance.json  # governance pipeline
//	misobench -scenarios                 # overload scenario matrix -> BENCH_scenarios.json
//	misobench -endurance                 # adversarial endurance harness -> BENCH_endurance.json
//	misobench -mode cache -scale small   # cross-query reuse soak -> BENCH_cache.json
//
// Profiling: -cpuprofile and -memprofile write pprof profiles covering
// whatever experiments the invocation runs (see README.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"miso/internal/experiments"
	"miso/internal/workload"
)

// mode is one registered experiment: a stable name, what it produces, and
// the artifact file it can write (empty when it only prints).
type mode struct {
	name     string
	desc     string
	artifact string
	run      func() error
}

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 3, 3.2, 4, 5, 6, 7, 8, 9, or 'order' (extension)")
	table := flag.String("table", "", "table to regenerate: 2")
	all := flag.Bool("all", false, "regenerate every paper figure and table")
	listModes := flag.Bool("modes", false, "list every registered mode and exit")
	modeList := flag.String("mode", "", "comma-separated mode names to run (see -modes)")
	scale := flag.String("scale", "paper", "dataset scale: paper or small")
	chaos := flag.Bool("chaos", false, "run the fault-injection sweep (robustness extension; not part of -all)")
	crash := flag.Bool("crash", false, "run the crash-recovery sweep (durability extension; not part of -all)")
	faultRate := flag.Float64("faultrate", 0, "uniform fault-injection rate applied to every experiment (0 disables)")
	faultSeed := flag.Int64("faultseed", 42, "seed for the deterministic fault injector")
	serveSoak := flag.Bool("serve", false, "run the concurrent-serving soak (robustness extension; not part of -all)")
	sessions := flag.Int("sessions", 8, "soak: concurrent client sessions")
	squeries := flag.Int("squeries", 32, "soak: queries per session (cycles the 32-query workload)")
	workers := flag.Int("workers", 4, "soak: serving worker pool size")
	queue := flag.Int("queue", 0, "soak: admission queue depth (0 = twice the workers)")
	timeout := flag.Duration("timeout", 0, "soak: per-query wall-clock deadline (0 disables)")
	reorgEvery := flag.Int("reorgevery", 0, "soak: force an online reorganization every n submissions (0 disables)")
	bench := flag.Bool("bench", false, "run the benchmark pipeline (tuner, knapsack, serving; not part of -all)")
	benchOut := flag.String("benchout", "", "benchmark pipeline: also write the machine-readable JSON report to this file")
	benchExec := flag.Bool("benchexec", false, "run the exec benchmark pipeline (morsel engine vs serial baseline; not part of -all)")
	benchExecOut := flag.String("benchexecout", "", "exec benchmark pipeline: also write the machine-readable JSON report to this file")
	execGate := flag.Bool("execgate", false, "exec benchmark pipeline: exit nonzero unless every per-operator workers=4 row matches the serial digest and runs at speedup >= 1.0")
	benchGov := flag.Bool("benchgov", false, "run the governance pipeline (cancellation storm, panic containment, memory budgets; not part of -all)")
	benchGovOut := flag.String("benchgovout", "", "governance pipeline: also write the machine-readable JSON report to this file")
	scenarios := flag.Bool("scenarios", false, "run the overload scenario matrix (flash crowd, tenant skew, diurnal, drift, ETL storm, DW brownout; not part of -all)")
	scenariosOut := flag.String("scenariosout", "BENCH_scenarios.json", "scenario matrix: write the machine-readable JSON report to this file ('' disables)")
	phaseDur := flag.Duration("phasedur", 0, "scenario matrix: duration of each load phase (0 = default)")
	cacheSessions := flag.Int("cachesessions", 0, "cache soak: concurrent client sessions (0 = default 4)")
	cacheRounds := flag.Int("cacherounds", 0, "cache soak: workload passes per session (0 = default 3)")
	cacheOut := flag.String("cacheout", "BENCH_cache.json", "cache soak: write the machine-readable JSON report to this file ('' disables)")
	endurance := flag.Bool("endurance", false, "run the long-horizon adversarial endurance harness (integrity extension; not part of -all)")
	enduranceOut := flag.String("enduranceout", "BENCH_endurance.json", "endurance harness: write the machine-readable JSON report to this file ('' disables)")
	enduranceTenants := flag.Int("endurancetenants", 0, "endurance: closed-loop client/tenant population (0 = default 200)")
	enduranceReorgs := flag.Int("endurancereorgs", 0, "endurance: reorganization-cycle horizon (0 = default 3)")
	enduranceQueries := flag.Int("endurancequeries", 0, "endurance: served-query horizon (0 = default 150)")
	enduranceDur := flag.Duration("endurancedur", 0, "endurance: wall-clock cap (0 = default 3m)")
	tuneWorkers := flag.Int("tuneworkers", 0, "tuner what-if worker pool size for all experiments (<= 1 keeps costing serial)")
	execWorkers := flag.Int("execworkers", 0, "execution engine for all experiments: 0 = morsel engine at GOMAXPROCS, n = n morsel workers, -1 = legacy serial engine")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile covering the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	cfg := experiments.Default()
	if *scale == "small" {
		cfg = experiments.Small()
	}
	cfg.FaultRate = *faultRate
	cfg.FaultSeed = *faultSeed
	cfg.TuneWorkers = *tuneWorkers
	cfg.ExecWorkers = *execWorkers

	writeJSON := func(path string, write func(io.Writer) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := write(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
		return nil
	}

	// fig5 reuses fig4's result when both run in one invocation.
	var fig4 *experiments.Fig4Result

	registry := []mode{
		{"fig3", "Figure 3: per-query HV vs DW execution profile", "", func() error {
			r, err := experiments.Fig3(cfg)
			if err != nil {
				return err
			}
			r.WriteText(os.Stdout)
			return nil
		}},
		{"fig3.2", "Section 3.2: the two-query transfer experiment", "", func() error {
			r, err := experiments.Sec32(cfg)
			if err != nil {
				return err
			}
			r.WriteText(os.Stdout)
			return nil
		}},
		{"fig4", "Figure 4: five-variant TTI comparison", "", func() error {
			r, err := experiments.Fig4(cfg)
			if err != nil {
				return err
			}
			fig4 = r
			r.WriteText(os.Stdout)
			return nil
		}},
		{"fig5", "Figure 5: TTI speedup over HV-OP", "", func() error {
			r, err := experiments.Fig5(cfg, fig4)
			if err != nil {
				return err
			}
			r.WriteText(os.Stdout)
			return nil
		}},
		{"fig6", "Figure 6: per-query time across the evolving workload", "", func() error {
			names := make([]string, 0, 32)
			for _, q := range workload.Evolving() {
				names = append(names, q.Name)
			}
			r, err := experiments.Fig6(cfg, names)
			if err != nil {
				return err
			}
			r.WriteText(os.Stdout)
			return nil
		}},
		{"fig7", "Figure 7: tuning policy comparison", "", func() error {
			r, err := experiments.Fig7(cfg)
			if err != nil {
				return err
			}
			r.WriteText(os.Stdout)
			return nil
		}},
		{"fig8", "Figure 8: transfer budget sensitivity", "", func() error {
			r, err := experiments.Fig8(cfg)
			if err != nil {
				return err
			}
			r.WriteText(os.Stdout)
			return nil
		}},
		{"fig9", "Figure 9: storage budget sensitivity", "", func() error {
			r, err := experiments.Fig9(cfg)
			if err != nil {
				return err
			}
			r.WriteText(os.Stdout)
			return nil
		}},
		{"table2", "Table 2: mutual impact of sharing the DW", "", func() error {
			r, err := experiments.Table2(cfg)
			if err != nil {
				return err
			}
			r.WriteText(os.Stdout)
			return nil
		}},
		{"order", "workload order sensitivity (extension)", "", func() error {
			r, err := experiments.OrderSensitivity(cfg)
			if err != nil {
				return err
			}
			r.WriteText(os.Stdout)
			return nil
		}},
		{"chaos", "fault-injection sweep (robustness extension)", "", func() error {
			r, err := experiments.Chaos(cfg)
			if err != nil {
				return err
			}
			r.WriteText(os.Stdout)
			return nil
		}},
		{"crash", "crash-recovery sweep (durability extension)", "", func() error {
			r, err := experiments.CrashSweep(cfg)
			if err != nil {
				return err
			}
			r.WriteText(os.Stdout)
			return nil
		}},
		{"bench", "benchmark pipeline: tuner, knapsack, serving", "BENCH_tuner.json", func() error {
			r, err := experiments.Bench(cfg)
			if err != nil {
				return err
			}
			r.WriteText(os.Stdout)
			return writeJSON(*benchOut, r.WriteJSON)
		}},
		{"benchexec", "exec benchmark pipeline: morsel engine vs serial baseline", "BENCH_exec.json", func() error {
			r, err := experiments.BenchExec(cfg)
			if err != nil {
				return err
			}
			r.WriteText(os.Stdout)
			if err := writeJSON(*benchExecOut, r.WriteJSON); err != nil {
				return err
			}
			if *execGate {
				if err := experiments.GateExec(r); err != nil {
					return err
				}
				fmt.Println("benchexec gate: every operator at speedup >= 1.0 with matching digests")
			}
			return nil
		}},
		{"benchgov", "governance pipeline: cancellation storm, panic containment, memory budgets", "BENCH_governance.json", func() error {
			r, err := experiments.BenchGovern(cfg)
			if err != nil {
				return err
			}
			r.WriteText(os.Stdout)
			return writeJSON(*benchGovOut, r.WriteJSON)
		}},
		{"serve", "concurrent-serving soak (robustness extension)", "", func() error {
			sc := experiments.DefaultSoak(cfg)
			sc.Sessions = *sessions
			sc.Queries = *squeries
			sc.Workers = *workers
			sc.Queue = *queue
			sc.Timeout = *timeout
			sc.ReorgEvery = *reorgEvery
			r, err := experiments.Soak(sc)
			if err != nil {
				return err
			}
			r.WriteText(os.Stdout)
			return nil
		}},
		{"scenarios", "overload scenario matrix: flash crowd, tenant skew, diurnal, drift churn, ETL storm, DW brownout", "BENCH_scenarios.json", func() error {
			sc := experiments.DefaultScenarios(cfg)
			sc.Workers = *workers
			sc.Queue = *queue
			if *phaseDur > 0 {
				sc.PhaseDur = *phaseDur
			}
			r, err := experiments.RunScenarios(sc)
			if err != nil {
				return err
			}
			r.WriteText(os.Stdout)
			if err := writeJSON(*scenariosOut, r.WriteJSON); err != nil {
				return err
			}
			if !r.Passed() {
				return fmt.Errorf("scenario matrix: one or more scenarios failed their acceptance checks")
			}
			return nil
		}},
		{"cache", "cross-query reuse soak: semantic result cache + shared-flight piggybacking vs cold execution", "BENCH_cache.json", func() error {
			cc := experiments.DefaultCache(cfg)
			if *cacheSessions > 0 {
				cc.Sessions = *cacheSessions
			}
			if *cacheRounds > 0 {
				cc.Rounds = *cacheRounds
			}
			cc.Workers = *workers
			cc.Queue = *queue
			r, err := experiments.BenchCache(cc)
			if err != nil {
				return err
			}
			r.WriteText(os.Stdout)
			if err := writeJSON(*cacheOut, r.WriteJSON); err != nil {
				return err
			}
			if !r.Passed() {
				return fmt.Errorf("cache soak: acceptance gate failed (want speedup >= 2x, hit rate > 0, digest-identical answers, drain-barrier invalidation)")
			}
			return nil
		}},
		{"endurance", "long-horizon adversarial endurance harness: closed-loop tenants, bit-rot injection, self-healing audit", "BENCH_endurance.json", func() error {
			ec := experiments.DefaultEndurance(cfg)
			if *enduranceTenants > 0 {
				ec.Tenants = *enduranceTenants
			}
			if *enduranceReorgs > 0 {
				ec.MinReorgs = *enduranceReorgs
			}
			if *enduranceQueries > 0 {
				ec.MinQueries = *enduranceQueries
			}
			if *enduranceDur > 0 {
				ec.MaxDuration = *enduranceDur
			}
			r, err := experiments.RunEndurance(ec)
			if err != nil {
				return err
			}
			r.WriteText(os.Stdout)
			if err := writeJSON(*enduranceOut, r.WriteJSON); err != nil {
				return err
			}
			if !r.Passed() {
				return fmt.Errorf("endurance harness: one or more acceptance checks failed")
			}
			return nil
		}},
	}
	byName := map[string]*mode{}
	for i := range registry {
		byName[registry[i].name] = &registry[i]
	}

	printModes := func(w *os.File) {
		fmt.Fprintf(w, "%-12s %-24s %s\n", "MODE", "ARTIFACT", "DESCRIPTION")
		for _, m := range registry {
			art := m.artifact
			if art == "" {
				art = "-"
			}
			fmt.Fprintf(w, "%-12s %-24s %s\n", m.name, art, m.desc)
		}
	}
	if *listModes {
		printModes(os.Stdout)
		return
	}

	unknown := func(name string) {
		fmt.Fprintf(os.Stderr, "unknown mode %q; registered modes:\n", name)
		printModes(os.Stderr)
		os.Exit(2)
	}

	// Resolve the legacy spelling flags and -mode into registry names.
	targets := map[string]bool{}
	want := func(name string) {
		if _, ok := byName[name]; !ok {
			unknown(name)
		}
		targets[name] = true
	}
	if *all {
		for _, t := range []string{"fig3", "fig3.2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table2", "order"} {
			want(t)
		}
	}
	if *fig != "" {
		name := "fig" + *fig
		if *fig == "order" {
			name = "order"
		}
		want(name)
	}
	if *table != "" {
		want("table" + *table)
	}
	for f, name := range map[*bool]string{
		chaos: "chaos", crash: "crash", serveSoak: "serve",
		bench: "bench", benchExec: "benchexec", benchGov: "benchgov",
		scenarios: "scenarios", endurance: "endurance",
	} {
		if *f {
			want(name)
		}
	}
	if *modeList != "" {
		for _, name := range strings.Split(*modeList, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			want(name)
		}
	}
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "nothing to do; pass -mode, -fig, -table or -all (see -modes and -h)")
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	for _, m := range registry {
		if !targets[m.name] {
			continue
		}
		start := time.Now()
		if err := m.run(); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", m.name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %s wall clock]\n\n", m.name, time.Since(start).Round(time.Millisecond))
	}
}

// Command misobench regenerates the tables and figures of the paper's
// evaluation section. Each -fig/-table flag maps to one experiment; -all
// runs everything in order. Use -scale small for a quick pass.
//
// Usage:
//
//	misobench -fig 4            # Figure 4 (five-variant TTI comparison)
//	misobench -fig 3.2          # the Section 3.2 two-query experiment
//	misobench -table 2          # Table 2 (mutual impact)
//	misobench -all -scale small # everything, quickly
//	misobench -chaos            # fault-injection sweep (extension)
//	misobench -crash            # crash-recovery sweep (durability extension)
//	misobench -serve -scale small -sessions 8 -workers 4   # concurrent soak
//	misobench -bench -scale small -benchout BENCH_tuner.json  # benchmark pipeline
//	misobench -benchexec -scale small -benchexecout BENCH_exec.json  # exec engine benchmarks
//	misobench -benchgov -scale small -benchgovout BENCH_governance.json  # governance pipeline
//
// Profiling: -cpuprofile and -memprofile write pprof profiles covering
// whatever experiments the invocation runs (see README.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"miso/internal/experiments"
	"miso/internal/workload"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 3, 3.2, 4, 5, 6, 7, 8, 9, or 'order' (extension)")
	table := flag.String("table", "", "table to regenerate: 2")
	all := flag.Bool("all", false, "regenerate every figure and table")
	scale := flag.String("scale", "paper", "dataset scale: paper or small")
	chaos := flag.Bool("chaos", false, "run the fault-injection sweep (robustness extension; not part of -all)")
	crash := flag.Bool("crash", false, "run the crash-recovery sweep (durability extension; not part of -all)")
	faultRate := flag.Float64("faultrate", 0, "uniform fault-injection rate applied to every experiment (0 disables)")
	faultSeed := flag.Int64("faultseed", 42, "seed for the deterministic fault injector")
	serveSoak := flag.Bool("serve", false, "run the concurrent-serving soak (robustness extension; not part of -all)")
	sessions := flag.Int("sessions", 8, "soak: concurrent client sessions")
	squeries := flag.Int("squeries", 32, "soak: queries per session (cycles the 32-query workload)")
	workers := flag.Int("workers", 4, "soak: serving worker pool size")
	queue := flag.Int("queue", 0, "soak: admission queue depth (0 = twice the workers)")
	timeout := flag.Duration("timeout", 0, "soak: per-query wall-clock deadline (0 disables)")
	reorgEvery := flag.Int("reorgevery", 0, "soak: force an online reorganization every n submissions (0 disables)")
	bench := flag.Bool("bench", false, "run the benchmark pipeline (tuner, knapsack, serving; not part of -all)")
	benchOut := flag.String("benchout", "", "benchmark pipeline: also write the machine-readable JSON report to this file")
	benchExec := flag.Bool("benchexec", false, "run the exec benchmark pipeline (morsel engine vs serial baseline; not part of -all)")
	benchExecOut := flag.String("benchexecout", "", "exec benchmark pipeline: also write the machine-readable JSON report to this file")
	benchGov := flag.Bool("benchgov", false, "run the governance pipeline (cancellation storm, panic containment, memory budgets; not part of -all)")
	benchGovOut := flag.String("benchgovout", "", "governance pipeline: also write the machine-readable JSON report to this file")
	tuneWorkers := flag.Int("tuneworkers", 0, "tuner what-if worker pool size for all experiments (<= 1 keeps costing serial)")
	execWorkers := flag.Int("execworkers", 0, "execution engine for all experiments: 0 = morsel engine at GOMAXPROCS, n = n morsel workers, -1 = legacy serial engine")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile covering the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	cfg := experiments.Default()
	if *scale == "small" {
		cfg = experiments.Small()
	}
	cfg.FaultRate = *faultRate
	cfg.FaultSeed = *faultSeed
	cfg.TuneWorkers = *tuneWorkers
	cfg.ExecWorkers = *execWorkers

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	targets := map[string]bool{}
	if *all {
		for _, t := range []string{"3", "3.2", "4", "5", "6", "7", "8", "9", "t2", "order"} {
			targets[t] = true
		}
	}
	if *fig != "" {
		targets[*fig] = true
	}
	if *table == "2" {
		targets["t2"] = true
	}
	if *chaos {
		targets["chaos"] = true
	}
	if *crash {
		targets["crash"] = true
	}
	if *serveSoak {
		targets["serve"] = true
	}
	if *bench {
		targets["bench"] = true
	}
	if *benchExec {
		targets["benchexec"] = true
	}
	if *benchGov {
		targets["benchgov"] = true
	}
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "nothing to do; pass -fig, -table or -all (see -h)")
		os.Exit(2)
	}

	run := func(name string, fn func() error) {
		if !targets[name] {
			return
		}
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %s wall clock]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	var fig4 *experiments.Fig4Result

	run("3", func() error {
		r, err := experiments.Fig3(cfg)
		if err != nil {
			return err
		}
		r.WriteText(os.Stdout)
		return nil
	})
	run("3.2", func() error {
		r, err := experiments.Sec32(cfg)
		if err != nil {
			return err
		}
		r.WriteText(os.Stdout)
		return nil
	})
	run("4", func() error {
		r, err := experiments.Fig4(cfg)
		if err != nil {
			return err
		}
		fig4 = r
		r.WriteText(os.Stdout)
		return nil
	})
	run("5", func() error {
		r, err := experiments.Fig5(cfg, fig4)
		if err != nil {
			return err
		}
		r.WriteText(os.Stdout)
		return nil
	})
	run("6", func() error {
		names := make([]string, 0, 32)
		for _, q := range workload.Evolving() {
			names = append(names, q.Name)
		}
		r, err := experiments.Fig6(cfg, names)
		if err != nil {
			return err
		}
		r.WriteText(os.Stdout)
		return nil
	})
	run("7", func() error {
		r, err := experiments.Fig7(cfg)
		if err != nil {
			return err
		}
		r.WriteText(os.Stdout)
		return nil
	})
	run("8", func() error {
		r, err := experiments.Fig8(cfg)
		if err != nil {
			return err
		}
		r.WriteText(os.Stdout)
		return nil
	})
	run("9", func() error {
		r, err := experiments.Fig9(cfg)
		if err != nil {
			return err
		}
		r.WriteText(os.Stdout)
		return nil
	})
	run("t2", func() error {
		r, err := experiments.Table2(cfg)
		if err != nil {
			return err
		}
		r.WriteText(os.Stdout)
		return nil
	})
	run("order", func() error {
		r, err := experiments.OrderSensitivity(cfg)
		if err != nil {
			return err
		}
		r.WriteText(os.Stdout)
		return nil
	})
	run("chaos", func() error {
		r, err := experiments.Chaos(cfg)
		if err != nil {
			return err
		}
		r.WriteText(os.Stdout)
		return nil
	})
	run("crash", func() error {
		r, err := experiments.CrashSweep(cfg)
		if err != nil {
			return err
		}
		r.WriteText(os.Stdout)
		return nil
	})
	run("bench", func() error {
		r, err := experiments.Bench(cfg)
		if err != nil {
			return err
		}
		r.WriteText(os.Stdout)
		if *benchOut != "" {
			f, err := os.Create(*benchOut)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := r.WriteJSON(f); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *benchOut)
		}
		return nil
	})
	run("benchexec", func() error {
		r, err := experiments.BenchExec(cfg)
		if err != nil {
			return err
		}
		r.WriteText(os.Stdout)
		if *benchExecOut != "" {
			f, err := os.Create(*benchExecOut)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := r.WriteJSON(f); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *benchExecOut)
		}
		return nil
	})
	run("benchgov", func() error {
		r, err := experiments.BenchGovern(cfg)
		if err != nil {
			return err
		}
		r.WriteText(os.Stdout)
		if *benchGovOut != "" {
			f, err := os.Create(*benchGovOut)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := r.WriteJSON(f); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *benchGovOut)
		}
		return nil
	})
	run("serve", func() error {
		sc := experiments.DefaultSoak(cfg)
		sc.Sessions = *sessions
		sc.Queries = *squeries
		sc.Workers = *workers
		sc.Queue = *queue
		sc.Timeout = *timeout
		sc.ReorgEvery = *reorgEvery
		r, err := experiments.Soak(sc)
		if err != nil {
			return err
		}
		r.WriteText(os.Stdout)
		return nil
	})
}

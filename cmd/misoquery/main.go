// Command misoquery runs ad-hoc HiveQL against a multistore instance. The
// query executes for real over the synthetic logs; the report shows where
// the plan ran (HV, DW, transfers), the simulated time breakdown, and the
// first rows of the result.
//
// Usage:
//
//	misoquery -sql "SELECT hashtag, COUNT(*) AS n FROM tweets GROUP BY hashtag ORDER BY n DESC LIMIT 5"
//	misoquery -name A1v1 -variant MS-MISO -warm
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"miso/internal/logical"
	"miso/internal/workload"
	"miso/miso"
)

func main() {
	sql := flag.String("sql", "", "HiveQL query to run")
	name := flag.String("name", "", "workload query id to run instead (e.g. A1v1)")
	variant := flag.String("variant", string(miso.MSMiso), "system variant")
	scale := flag.String("scale", "small", "dataset scale: paper or small")
	warm := flag.Bool("warm", false, "run the preceding workload queries first (warms views)")
	maxRows := flag.Int("rows", 10, "max result rows to print")
	explain := flag.Bool("explain", false, "print the chosen multistore plan before running")
	faultRate := flag.Float64("faultrate", 0, "uniform fault-injection rate (0 disables the fault plane)")
	faultSeed := flag.Int64("faultseed", 42, "seed for the deterministic fault injector")
	tenant := flag.String("tenant", "", "tenant id the query is submitted as (surfaces per-tenant admission counters)")
	timeout := flag.Duration("timeout", 0, "per-query wall-clock deadline (0 disables; abandoned work is charged to RECOVERY)")
	memLimit := flag.Int64("memlimit", 0, "per-query memory budget in bytes (0 disables; exceeding aborts the query)")
	ckptEvery := flag.Int("checkpointevery", 0, "journal design mutations and checkpoint full state every n operations (0 disables the durability plane)")
	reuse := flag.Bool("reuse", false, "enable the cross-query reuse plane (semantic result cache + shared-flight piggybacking); repeats of the same query over unchanged logs are served from cache")
	cacheBytes := flag.Int64("cachebytes", 0, "with -reuse: result cache capacity in bytes (0 = default 64 MiB)")
	execWorkers := flag.Int("execworkers", 0, "execution engine: 0 = morsel engine at GOMAXPROCS, n = n morsel workers, -1 = legacy serial engine")
	auditFlag := flag.Bool("audit", false, "run a one-shot foreground integrity audit (standalone, or after the query when -sql/-name is given); exits 3 on violation")
	auditRepair := flag.Bool("auditrepair", false, "with -audit: self-heal corrupt views by recomputation instead of only reporting")
	flag.Parse()

	query := *sql
	if *name != "" {
		q, ok := workload.ByName(*name)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload query %q\n", *name)
			os.Exit(2)
		}
		query = q.SQL
	}
	if query == "" && !*auditFlag {
		fmt.Fprintln(os.Stderr, "pass -sql or -name (see -h)")
		os.Exit(2)
	}

	dataCfg := miso.SmallData()
	if *scale == "paper" {
		dataCfg = miso.DefaultData()
	}
	sysCfg := miso.DefaultConfig(miso.Variant(*variant))
	sysCfg.Faults = miso.UniformFaults(*faultRate)
	sysCfg.FaultSeed = *faultSeed
	sysCfg.CheckpointEvery = *ckptEvery
	sysCfg.ExecWorkers = *execWorkers
	sysCfg.MemLimitBytes = *memLimit
	sysCfg.Reuse = miso.ReuseConfig{Enabled: *reuse, CacheBytes: *cacheBytes}
	sys, err := miso.Open(sysCfg, dataCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := sys.ProvideFutureWorkload(workload.SQLs()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *warm && *name != "" {
		for _, q := range workload.Evolving() {
			if q.Name == *name {
				break
			}
			if _, err := sys.Run(q.SQL); err != nil {
				fmt.Fprintf(os.Stderr, "warmup %s: %v\n", q.Name, err)
				os.Exit(1)
			}
		}
	}

	if query == "" {
		// -audit with no query: check the freshly opened system and exit.
		runAudit(sys, *auditRepair)
		return
	}

	if *explain {
		plan, err := logical.NewBuilder(sys.Catalog()).BuildSQL(query)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		mp, err := sys.Optimizer().Choose(plan, sys.Design())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(mp.Explain())
		fmt.Println()
	}

	// Per-operator wall-clock counters for this query alone: attached
	// after warmup so the breakdown covers only the measured run.
	st := &miso.ExecStats{}
	sys.SetExecStats(st)

	// The query goes through the serving frontend (one worker, so the
	// execution itself is identical to sys.Run) to get deadline
	// enforcement and the serving counters. Ctrl-C cancels the query
	// cooperatively: the morsel workers notice at their next claim and the
	// partial work is charged to recovery.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	srv := miso.NewServer(miso.ServeConfig{Workers: 1, QueryTimeout: *timeout}, sys)
	rep, err := srv.DoAs(ctx, *tenant, query)
	srv.Close()
	sm := srv.Metrics()
	tenantLine := ""
	for _, ts := range srv.TenantStats() {
		if ts.Tenant == "" {
			continue // anonymous submissions have no per-tenant accounting to show
		}
		tenantLine += fmt.Sprintf(", tenant %q served %d shed %d", ts.Tenant, ts.Served, ts.Shed)
	}
	if err != nil {
		m := sys.Metrics()
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			fmt.Fprintf(os.Stderr, "misoquery: query abandoned after %s deadline (%.1fs of partial work charged to recovery)\n",
				*timeout, m.Recovery)
		case errors.Is(err, context.Canceled):
			fmt.Fprintf(os.Stderr, "misoquery: query canceled (%.1fs of partial work charged to recovery)\n",
				m.Recovery)
		case errors.Is(err, miso.ErrMemLimit):
			fmt.Fprintf(os.Stderr, "misoquery: query aborted over its %d-byte memory budget (%.1fs of partial work charged to recovery)\n",
				*memLimit, m.Recovery)
		default:
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(1)
	}

	mode := "split execution"
	switch {
	case rep.CacheHit:
		mode = "served from the semantic result cache (no execution)"
	case rep.Piggybacked:
		mode = "piggybacked on a concurrent identical query (no execution)"
	case rep.HVOnly:
		mode = "executed entirely in HV"
	case rep.BypassedHV:
		mode = "executed entirely in DW (bypassed HV)"
	}
	fmt.Printf("%s\n", mode)
	if rep.RecoverySeconds > 0 {
		fmt.Printf("simulated time: HV %.1fs + transfer %.1fs + DW %.1fs + recovery %.1fs = %.1fs\n",
			rep.HVSeconds, rep.TransferSeconds, rep.DWSeconds, rep.RecoverySeconds, rep.Total())
	} else {
		fmt.Printf("simulated time: HV %.1fs + transfer %.1fs + DW %.1fs = %.1fs\n",
			rep.HVSeconds, rep.TransferSeconds, rep.DWSeconds, rep.Total())
	}
	if rep.RecoverySeconds > 0 || rep.Retries > 0 {
		fallback := ""
		if rep.FellBackToHV {
			fallback = ", fell back to HV"
		}
		fmt.Printf("fault recovery: %.1fs across %d retries%s (sheds %d, breaker trips %d, timeouts %d)\n",
			rep.RecoverySeconds, rep.Retries, fallback,
			sm.Sheds, sm.BreakerTrips, sm.Timeouts)
	}
	if len(rep.UsedViews) > 0 {
		fmt.Printf("views used: %v\n", rep.UsedViews)
	}
	fmt.Printf("opportunistic views created: %d\n", rep.NewViews)
	fmt.Printf("%d result rows\n", rep.ResultRows)
	fmt.Printf("serving: sheds %d, breaker trips %d, timeouts %d%s\n",
		sm.Sheds, sm.BreakerTrips, sm.Timeouts, tenantLine)
	if *reuse {
		rs := sys.ReuseStats()
		fmt.Printf("reuse: %d cached subplans fed this query; cache %d hits / %d misses (%d entries, %d bytes), piggybacked %d, flight fallbacks %d\n",
			rep.SubplanHits, rs.Cache.Hits, rs.Cache.Misses, rs.Cache.Entries, rs.Cache.Bytes,
			rs.Flight.Shared, rs.Flight.Fallbacks)
	}
	if mgr := sys.Durability(); mgr != nil {
		fmt.Printf("durability: %d WAL records (%d bytes), %d checkpoints\n",
			mgr.WAL().Records(), mgr.WAL().LSN(), mgr.Checkpoints())
	}
	if len(st.Breakdown()) > 0 {
		fmt.Println("operator wall clock:")
		st.WriteBreakdown(os.Stdout)
	}

	if rep.Result != nil {
		fmt.Println()
		for _, c := range rep.Result.Schema.Columns {
			fmt.Printf("%-18s", c.Name)
		}
		fmt.Println()
		n := rep.Result.NumRows()
		if n > *maxRows {
			n = *maxRows
		}
		for _, row := range rep.Result.Rows[:n] {
			for _, v := range row {
				fmt.Printf("%-18s", v.String())
			}
			fmt.Println()
		}
		if rep.Result.NumRows() > n {
			fmt.Printf("... (%d more rows)\n", rep.Result.NumRows()-n)
		}
	}

	if *auditFlag {
		fmt.Println()
		runAudit(sys, *auditRepair)
	}
}

// runAudit performs one foreground integrity pass — every resident view
// plus the system invariants — and prints one pass/fail line per
// invariant family. It exits 3 when any violation was detected (even a
// repaired one: the stored state was bad) and 1 on a fatal audit error.
func runAudit(sys *miso.System, repair bool) {
	viols, err := miso.Audit(sys, repair)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	byFam := make(map[string][]miso.AuditViolation)
	for _, v := range viols {
		byFam[v.Invariant] = append(byFam[v.Invariant], v)
	}
	fmt.Println("integrity audit:")
	for _, fam := range miso.AuditFamilies() {
		vs := byFam[fam]
		if len(vs) == 0 {
			fmt.Printf("  %-12s pass\n", fam)
			continue
		}
		repaired := 0
		for _, v := range vs {
			if v.Repaired {
				repaired++
			}
		}
		fmt.Printf("  %-12s FAIL (%d violations, %d repaired)\n", fam, len(vs), repaired)
		for _, v := range vs {
			fmt.Printf("    %s\n", v.String())
		}
	}
	if len(viols) > 0 {
		os.Exit(3)
	}
}

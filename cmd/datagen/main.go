// Command datagen emits the synthetic social-media logs as JSON-lines
// files, one per log, into the output directory.
//
// Usage:
//
//	datagen -out ./logs -tweets 20000 -checkins 20000 -seed 42
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"miso/internal/data"
)

func main() {
	out := flag.String("out", ".", "output directory")
	tweets := flag.Int("tweets", 20000, "number of tweet records")
	checkins := flag.Int("checkins", 20000, "number of check-in records")
	marks := flag.Int("landmarks", 1200, "number of landmark records")
	users := flag.Int("users", 2500, "user id space")
	venues := flag.Int("venues", 800, "venue id space")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	cfg := data.Config{
		Seed: *seed, NumTweets: *tweets, NumCheck: *checkins, NumMarks: *marks,
		NumUsers: *users, NumVenues: *venues, ScaleFactor: 1,
	}
	cat, err := data.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, name := range cat.LogNames() {
		log, err := cat.Log(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		path := filepath.Join(*out, name+".json")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		w := bufio.NewWriter(f)
		for _, line := range log.Lines {
			fmt.Fprintln(w, line)
		}
		if err := w.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d records, %d bytes)\n", path, log.NumLines(), log.RawBytes())
	}
}

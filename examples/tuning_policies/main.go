// Tuning policies: run the same workload under four placement policies —
// no tuning, passive LRU retention, the MISO online tuner, and the oracle
// that knows the future — and compare their time-to-insight. This is a
// compact version of the paper's Figure 7 under constrained budgets.
package main

import (
	"fmt"
	"log"

	"miso/internal/workload"
	"miso/miso"
)

func main() {
	variants := []miso.Variant{miso.MSBasic, miso.MSLru, miso.MSMiso, miso.MSOra}
	fmt.Printf("%-9s %10s %10s %10s %10s %12s\n",
		"policy", "HV(s)", "DW(s)", "xfer(s)", "tune(s)", "TTI(s)")

	var baseline float64
	for _, v := range variants {
		cfg := miso.DefaultConfig(v)
		sys, err := miso.Open(cfg, miso.SmallData())
		if err != nil {
			log.Fatal(err)
		}
		// Constrained budgets, as in the paper's tuning comparison.
		cfg.SetBudgets(sys.Catalog(), 0.125, 10<<30)
		sys, err = miso.Open(cfg, miso.SmallData())
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.ProvideFutureWorkload(workload.SQLs()); err != nil {
			log.Fatal(err)
		}
		for _, q := range workload.Evolving() {
			if _, err := sys.Run(q.SQL); err != nil {
				log.Fatalf("%s %s: %v", v, q.Name, err)
			}
		}
		m := sys.Metrics()
		fmt.Printf("%-9s %10.0f %10.0f %10.0f %10.0f %12.0f\n",
			v, m.HVExe, m.DWExe, m.Transfer, m.Tune, m.TTI())
		if v == miso.MSBasic {
			baseline = m.TTI()
		} else if baseline > 0 {
			fmt.Printf("%9s -> %.2fx faster than no tuning\n", "", baseline/m.TTI())
		}
	}
}

// Spare capacity: run the full 32-query workload under MS-MISO, then
// replay its timeline against a warehouse that is busy with its own
// reporting queries — the Section 5.4 scenario — and report the mutual
// slowdown in both directions for all four spare-capacity configurations.
package main

import (
	"fmt"
	"log"

	"miso/internal/experiments"
	"miso/internal/sim"
	"miso/internal/workload"
	"miso/miso"
)

func main() {
	sys, err := miso.Open(miso.DefaultConfig(miso.MSMiso), miso.SmallData())
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.ProvideFutureWorkload(workload.SQLs()); err != nil {
		log.Fatal(err)
	}
	for _, q := range workload.Evolving() {
		if _, err := sys.Run(q.SQL); err != nil {
			log.Fatalf("%s: %v", q.Name, err)
		}
	}
	events := experiments.BuildTimeline(sys)
	fmt.Printf("multistore run: %.0f simulated seconds across %d timeline phases\n\n",
		sim.TotalSeconds(events), len(events))

	fmt.Printf("%-14s %20s %20s %14s\n",
		"spare capacity", "DW query slowdown", "multistore slowdown", "peak bg lat")
	for _, bg := range sim.Scenarios() {
		o := sim.Simulate(events, bg, 10)
		fmt.Printf("%-14s %19.1f%% %19.1f%% %13.2fs\n",
			bg.Name, o.BgSlowdownPct, o.MsSlowdownPct, o.PeakBgLatency)
	}
	fmt.Println("\nboth directions of interference stay small: the multistore")
	fmt.Println("workload is a good tenant on a busy warehouse.")
}

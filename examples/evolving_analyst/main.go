// Evolving analyst: replay one analyst's full session (the four versions of
// workload query A1) through the MS-MISO system and show how the tuner's
// reorganization phases migrate views into the warehouse until the final
// version bypasses the big data store entirely.
package main

import (
	"fmt"
	"log"

	"miso/internal/workload"
	"miso/miso"
)

func main() {
	cfg := miso.DefaultConfig(miso.MSMiso)
	// Reorganize after every query so the effect is visible within one
	// short session (the paper reorganizes every 3 queries of 32).
	cfg.ReorgEvery = 1
	sys, err := miso.Open(cfg, miso.SmallData())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("analyst A1 iterates on a restaurant-marketing query:")
	for _, name := range []string{"A1v1", "A1v2", "A1v3", "A1v4"} {
		q, _ := workload.ByName(name)
		rep, err := sys.Run(q.SQL)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		mode := "split across HV and DW"
		switch {
		case rep.HVOnly:
			mode = "ran fully in HV"
		case rep.BypassedHV:
			mode = "ran fully in DW — bypassed HV"
		}
		fmt.Printf("  %s: %7.0f s  (%s; %d views reused)\n",
			name, rep.Total(), mode, len(rep.UsedViews))
	}

	fmt.Println("\nreorganization phases:")
	for _, r := range sys.ReorgLog() {
		fmt.Printf("  before query %d: %d views -> DW, %d -> HV, %d dropped (%.1f GB moved, %.0f s)\n",
			r.BeforeSeq+1, r.MovedToDW, r.MovedToHV, r.Dropped,
			float64(r.Bytes)/1e9, r.Seconds)
	}

	fmt.Printf("\nfinal design: HV holds %d views, DW holds %d views\n",
		sys.HV().Views.Len(), sys.DW().Views.Len())
	m := sys.Metrics()
	fmt.Printf("session TTI %.0f s = HV %.0f + DW %.0f + transfer %.0f + tuning %.0f\n",
		m.TTI(), m.HVExe, m.DWExe, m.Transfer, m.Tune)
}

// Quickstart: open a multistore system, run two related exploratory
// queries, and watch the second one reuse the opportunistic views the
// first one left behind.
package main

import (
	"fmt"
	"log"

	"miso/miso"
)

func main() {
	sys, err := miso.Open(miso.DefaultConfig(miso.MSMiso), miso.SmallData())
	if err != nil {
		log.Fatal(err)
	}

	// An analyst's first exploratory query: which hashtags trend among
	// highly retweeted English tweets in early January 2013?
	q1 := `
		SELECT t.hashtag, COUNT(*) AS n, AVG(t.retweets) AS reach
		FROM tweets t
		WHERE t.lang = 'en' AND t.retweets > 100
		      AND t.ts >= 1356998400 AND t.ts < 1357257600
		GROUP BY t.hashtag ORDER BY n DESC LIMIT 5`

	// The refined follow-up adds a popularity floor per hashtag.
	q2 := `
		SELECT t.hashtag, COUNT(*) AS n, AVG(t.retweets) AS reach
		FROM tweets t
		WHERE t.lang = 'en' AND t.retweets > 100 AND t.followers > 5000
		      AND t.ts >= 1356998400 AND t.ts < 1357257600
		GROUP BY t.hashtag ORDER BY n DESC LIMIT 5`

	for i, q := range []string{q1, q2} {
		rep, err := sys.Run(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %d: %.0f simulated seconds "+
			"(HV %.0fs, transfer %.0fs, DW %.0fs), %d views reused, %d created\n",
			i+1, rep.Total(), rep.HVSeconds, rep.TransferSeconds, rep.DWSeconds,
			len(rep.UsedViews), rep.NewViews)
		for _, row := range rep.Result.Rows {
			fmt.Printf("  %-10s n=%-5s reach=%s\n", row[0].String(), row[1].String(), row[2].String())
		}
	}

	m := sys.Metrics()
	fmt.Printf("\nsession TTI: %.0f simulated seconds (%d queries)\n", m.TTI(), m.Queries)
	fmt.Printf("HV now holds %d opportunistic views (%.1f GB logical)\n",
		sys.HV().Views.Len(), float64(sys.HV().Views.TotalBytes())/1e9)
}

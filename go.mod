module miso

go 1.22

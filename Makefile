GO ?= go

.PHONY: tier1 build vet test race bench chaos soak serve crash govern scenarios endurance cache lint

# tier1 is the gate every change must pass: clean build, vet, the full
# test suite under the race detector, and explicit runs of the
# concurrent-serving soak, the crash-recovery regression, the
# parallel-tuning determinism and concurrent what-if costing regressions,
# the morsel-engine determinism regressions, the governance regressions
# (cancellation storm, panic isolation), and the overload-plane
# regressions (hedge digest identity, breaker half-open contention,
# quota fairness, pool storm, retry budgets), and the integrity-plane
# regressions (self-healing repair, quarantine tombstones, audit
# byte-identity, scrub-during-reorganize, scrub-during-recovery), and
# the reuse-plane regressions (cache-hit digest identity, invalidation
# edges, piggybacking, disabled byte-identity) — all race-enabled.
tier1:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -race -run 'TestServeSoak|TestServeMatchesSequentialRun|TestConcurrentWhatIfCostingDuringSoak|TestCancelFreesWorkersWithinBound|TestWorkerPanicIsolation|TestMetricsGovernanceCounters' -count 1 ./internal/serve/
	$(GO) test -race -run 'TestBreakerHalfOpenContention|TestQuotaWeightedFairness|TestQuotaShedsAreTenantScoped|TestAdaptiveLimiter|TestOverloadPlaneDisabledIsNoOp' -count 1 ./internal/serve/
	$(GO) test -race -run 'TestRecoverPerCrashSite|TestCleanShutdownByteIdentity|TestServeResumesOnRecoveredSystem|TestStateDigestIdenticalAcrossTuneWorkers|TestStateDigestIdenticalAcrossExecWorkers' -count 1 ./internal/multistore/
	$(GO) test -race -run 'TestHedgeDigestIdentity|TestHedgeDisabledIsStrictNoOp|TestRetryBudgetCapsRecovery' -count 1 ./internal/multistore/
	$(GO) test -race -run 'TestAuditRepairsCorruptView|TestQuarantineTombstoneBlocksCapture|TestEvictThenQuarantineNoLRURetention|TestAuditCleanRunByteIdentity' -count 1 ./internal/multistore/
	$(GO) test -race -run 'TestScrubDuringReorganize|TestScrubDuringRecovery|TestBackgroundScrubberUnderLoad' -count 1 ./internal/audit/
	$(GO) test -race -run 'TestReuse' -count 1 ./internal/multistore/
	$(GO) test -race -run 'TestPlanHashZeroAlloc|TestFlightPiggyback|TestCacheHitMissAndDigestVerify' -count 1 ./internal/mqo/
	$(GO) test -race -run 'TestPoolStorm' -count 1 ./internal/govern/
	$(GO) test -race -run 'TestTuneDeterministicAcrossWorkerCounts' -count 1 ./internal/core/
	$(GO) test -race -run 'TestMorselEngineByteIdenticalToSerial|TestMorselEngineFullWorkloadDigest|TestSortFullRowTieBreak' -count 1 ./internal/exec/

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the reproducible benchmark pipelines — the tuner pipeline
# (what-if costing at several worker counts against the in-repo
# BaselineCosting path, the knapsack DP, a short serving soak) and the
# exec pipeline (morsel engine vs the legacy serial engine, per operator
# and end-to-end, digest-checked) — writing the machine-readable reports
# CI uploads as artifacts, then the package micro-benchmarks.
bench:
	$(GO) run ./cmd/misobench -bench -scale small -benchout BENCH_tuner.json
	$(GO) run ./cmd/misobench -benchexec -scale small -benchexecout BENCH_exec.json
	$(GO) run ./cmd/misobench -benchgov -scale small -benchgovout BENCH_governance.json
	$(GO) test -bench . -benchtime 1x -run '^$$' ./internal/multistore/

chaos:
	$(GO) run ./cmd/misobench -chaos -scale small

soak:
	$(GO) test -race -run 'TestServeSoak' -count 1 -v ./internal/serve/

serve:
	$(GO) run ./cmd/misobench -serve -scale small

crash:
	$(GO) run ./cmd/misobench -crash -scale small

govern:
	$(GO) run ./cmd/misobench -benchgov -scale small

# endurance runs the long-horizon adversarial endurance harness:
# closed-loop tenants with think time, bit-rot injection (SiteViewRot),
# and the self-healing background scrubber, with acceptance checks
# written to BENCH_endurance.json.
endurance:
	$(GO) run ./cmd/misobench -mode endurance -scale small

# scenarios runs the multi-tenant overload scenario matrix (flash crowd,
# Zipf skew, diurnal shift, drift burst, ETL storm, DW brownout) and
# fails if any scenario misses its acceptance checks.
scenarios:
	$(GO) run ./cmd/misobench -scenarios -scale small

# cache runs the cross-query reuse soak (semantic result cache +
# shared-flight piggybacking vs cold execution) and fails unless reuse
# wins >= 2x throughput with a nonzero hit rate and digest-identical
# answers (BENCH_cache.json).
cache:
	$(GO) run ./cmd/misobench -mode cache -scale small

# lint runs the static analyzers when they are installed; it skips them
# with a note otherwise so offline checkouts still build.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; else echo "staticcheck not installed; skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; else echo "govulncheck not installed; skipping"; fi

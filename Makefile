GO ?= go

.PHONY: tier1 build vet test race bench chaos

# tier1 is the gate every change must pass: clean build, vet, and the full
# test suite under the race detector.
tier1:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./internal/multistore/

chaos:
	$(GO) run ./cmd/misobench -chaos -scale small

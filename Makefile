GO ?= go

.PHONY: tier1 build vet test race bench chaos soak serve crash

# tier1 is the gate every change must pass: clean build, vet, the full
# test suite under the race detector, and explicit runs of the
# concurrent-serving soak and the crash-recovery regression (both
# race-enabled).
tier1:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -race -run 'TestServeSoak|TestServeMatchesSequentialRun' -count 1 ./internal/serve/
	$(GO) test -race -run 'TestRecoverPerCrashSite|TestCleanShutdownByteIdentity|TestServeResumesOnRecoveredSystem' -count 1 ./internal/multistore/

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./internal/multistore/

chaos:
	$(GO) run ./cmd/misobench -chaos -scale small

soak:
	$(GO) test -race -run 'TestServeSoak' -count 1 -v ./internal/serve/

serve:
	$(GO) run ./cmd/misobench -serve -scale small

crash:
	$(GO) run ./cmd/misobench -crash -scale small

// Benchmarks regenerating each table and figure of the paper's evaluation,
// plus ablations of the tuner's design choices (DESIGN.md section 5). Each
// benchmark iteration performs one full experiment at the small dataset
// scale so `go test -bench=.` completes in minutes; use cmd/misobench
// -scale paper for the paper-scale regeneration recorded in EXPERIMENTS.md.
// The reported metrics include the simulated TTI per variant
// (simulated-TTI-s custom units), so benchmark output doubles as a compact
// record of the experiment shapes.
package main

import (
	"testing"

	"miso/internal/data"
	"miso/internal/experiments"
	"miso/internal/multistore"
	"miso/internal/workload"
)

func benchConfig() experiments.Config { return experiments.Small() }

// runVariantOnce executes the full workload on one variant and returns its
// metrics; helper for ablation benches.
func runVariantOnce(b *testing.B, cfg multistore.Config, dcfg data.Config) multistore.Metrics {
	b.Helper()
	cat, err := data.Generate(dcfg)
	if err != nil {
		b.Fatal(err)
	}
	if cfg.Tuner.Bh == 0 {
		cfg.SetBudgets(cat, 2.0, 10<<30)
	}
	sys := multistore.New(cfg, cat)
	if err := sys.ProvideFutureWorkload(workload.SQLs()); err != nil {
		b.Fatal(err)
	}
	for _, q := range workload.Evolving() {
		if _, err := sys.Run(q.SQL); err != nil {
			b.Fatalf("%s: %v", q.Name, err)
		}
	}
	return sys.Metrics()
}

// BenchmarkFig3SplitProfile regenerates Figure 3: the execution-time
// profile of every split plan for query A1v1.
func BenchmarkFig3SplitProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(r.Plans)), "plans")
			b.ReportMetric(r.Plans[0].Total(), "best-plan-simulated-s")
		}
	}
}

// BenchmarkSec32TwoQuery regenerates the Section 3.2 two-query experiment.
func BenchmarkSec32TwoQuery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Sec32(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			t := r.Totals[multistore.VariantMSMiso]
			b.ReportMetric(t[0]+t[1]+t[2], "miso-simulated-TTI-s")
		}
	}
}

// BenchmarkFig4Variants regenerates Figure 4: the five-variant TTI
// comparison (and the data behind Figure 5).
func BenchmarkFig4Variants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.TTI(multistore.VariantHVOnly), "hvonly-simulated-TTI-s")
			b.ReportMetric(r.TTI(multistore.VariantMSMiso), "miso-simulated-TTI-s")
		}
	}
}

// BenchmarkFig5TTICDF regenerates Figure 5 from a fresh Figure 4 run.
func BenchmarkFig5TTICDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(benchConfig(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			row := r.DistributionRow(r.Base.Outcome(multistore.VariantMSMiso))
			b.ReportMetric(row[1], "miso-pct-under-100s")
		}
	}
}

// BenchmarkFig6StoreUtilization regenerates Figure 6: per-query store
// utilization under MS-BASIC and MS-MISO at two budgets.
func BenchmarkFig6StoreUtilization(b *testing.B) {
	names := make([]string, 0, 32)
	for _, q := range workload.Evolving() {
		names = append(names, q.Name)
	}
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(benchConfig(), names)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Series[2].SecondsInHVPerDWSecond, "miso2x-hv-per-dw-s")
		}
	}
}

// BenchmarkFig7TuningTechniques regenerates Figure 7: the tuning technique
// comparison under constrained budgets.
func BenchmarkFig7TuningTechniques(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.TTI(multistore.VariantMSLru), "lru-simulated-TTI-s")
			b.ReportMetric(r.TTI(multistore.VariantMSMiso), "miso-simulated-TTI-s")
		}
	}
}

// BenchmarkFig8BudgetSweep regenerates Figure 8: TTI across view storage
// budgets 0.125x..4x for MS-LRU, MS-OFF and MS-MISO.
func BenchmarkFig8BudgetSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			tt := r.TTIs[multistore.VariantMSMiso]
			b.ReportMetric(tt[0], "miso-0.125x-simulated-TTI-s")
			b.ReportMetric(tt[len(tt)-1], "miso-4x-simulated-TTI-s")
		}
	}
}

// BenchmarkFig9SpareCapacity regenerates Figure 9: the MS-MISO run against
// a DW with 40% spare IO capacity.
func BenchmarkFig9SpareCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Outcome.BgSlowdownPct, "bg-slowdown-pct")
		}
	}
}

// BenchmarkTable2MutualImpact regenerates Table 2: mutual slowdown across
// the four spare-capacity configurations.
func BenchmarkTable2MutualImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Rows[0].DWSlowdownPct, "io40-dw-slowdown-pct")
			b.ReportMetric(r.Rows[0].MSSlowdownPct, "io40-ms-slowdown-pct")
		}
	}
}

// --- Ablations of the tuner's design choices ---

// BenchmarkAblationKnapsackOrder packs HV before DW, reversing the paper's
// DW-first heuristic.
func BenchmarkAblationKnapsackOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := multistore.DefaultConfig(multistore.VariantMSMiso)
		cfg.Tuner.HVFirst = true
		m := runVariantOnce(b, cfg, data.SmallConfig())
		if i == 0 {
			b.ReportMetric(m.TTI(), "simulated-TTI-s")
		}
	}
}

// BenchmarkAblationNoSparsify disables interaction analysis: every view is
// an independent knapsack item.
func BenchmarkAblationNoSparsify(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := multistore.DefaultConfig(multistore.VariantMSMiso)
		cfg.Tuner.SkipSparsify = true
		m := runVariantOnce(b, cfg, data.SmallConfig())
		if i == 0 {
			b.ReportMetric(m.TTI(), "simulated-TTI-s")
		}
	}
}

// BenchmarkAblationNoDecay weights the whole window uniformly instead of
// decaying older epochs.
func BenchmarkAblationNoDecay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := multistore.DefaultConfig(multistore.VariantMSMiso)
		cfg.Decay = 1.0
		m := runVariantOnce(b, cfg, data.SmallConfig())
		if i == 0 {
			b.ReportMetric(m.TTI(), "simulated-TTI-s")
		}
	}
}

// BenchmarkAblationReplication relaxes Vh ∩ Vd = ∅, letting DW-placed views
// also stay in HV.
func BenchmarkAblationReplication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := multistore.DefaultConfig(multistore.VariantMSMiso)
		cfg.Tuner.AllowReplication = true
		m := runVariantOnce(b, cfg, data.SmallConfig())
		if i == 0 {
			b.ReportMetric(m.TTI(), "simulated-TTI-s")
		}
	}
}

// BenchmarkAblationBaseline is MS-MISO with every knob at the paper's
// setting, for comparison against the ablations above.
func BenchmarkAblationBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := multistore.DefaultConfig(multistore.VariantMSMiso)
		m := runVariantOnce(b, cfg, data.SmallConfig())
		if i == 0 {
			b.ReportMetric(m.TTI(), "simulated-TTI-s")
		}
	}
}

// BenchmarkAblationTransferBudget sweeps Bt, the Section 6 trade-off: a
// larger budget moves more per reorganization but costs more tuning time.
// At the small dataset scale the workload's views are tens to hundreds of
// MB, so budgets from 64 MB to 10 GB cover "binding" through "unbounded".
func BenchmarkAblationTransferBudget(b *testing.B) {
	for _, bt := range []int64{64 << 20, 512 << 20, 10 << 30} {
		bt := bt
		b.Run(byteLabel(bt), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cat, err := data.Generate(data.SmallConfig())
				if err != nil {
					b.Fatal(err)
				}
				cfg := multistore.DefaultConfig(multistore.VariantMSMiso)
				cfg.SetBudgets(cat, 2.0, bt)
				sys := multistore.New(cfg, cat)
				for _, q := range workload.Evolving() {
					if _, err := sys.Run(q.SQL); err != nil {
						b.Fatalf("%s: %v", q.Name, err)
					}
				}
				if i == 0 {
					m := sys.Metrics()
					b.ReportMetric(m.TTI(), "simulated-TTI-s")
					b.ReportMetric(m.Tune, "tune-simulated-s")
				}
			}
		})
	}
}

func byteLabel(n int64) string {
	switch {
	case n >= 1<<30:
		return itoa(n>>30) + "GB"
	case n >= 1<<20:
		return itoa(n>>20) + "MB"
	default:
		return itoa(n) + "B"
	}
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
